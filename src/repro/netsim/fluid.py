"""Fluid (flow-level) bandwidth allocation.

This is the heart of the ns3 substitution (see DESIGN.md): instead of
simulating every data packet of a multi-minute experiment, bulk traffic is
modeled as flow rates recomputed every ``update_interval`` seconds.

The allocator implements **weighted max-min fairness with demand caps**
via progressive filling:

1. Inelastic (UDP) flows charge their full demand to every link on their
   path — they do not back off.
2. Elastic (TCP) flows share the remaining capacity: all unfrozen flows'
   rates grow in proportion to their weights until either a link
   saturates (freezing every flow crossing it) or a flow reaches its
   demand (freezing just that flow).
3. Links whose total offered load exceeds capacity drop the excess; each
   flow's goodput is its rate times the product of survival probabilities
   along its path.

A first-order smoothing filter models TCP's ramping, so throughput
recovers over a few RTT-scale updates after a reroute rather than
instantly — visible as the short dips in the Figure 3 reproduction.

Performance (this is the simulator's hottest path — it runs every 10 ms
of simulated time in every experiment):

* :func:`max_min_allocate` keeps an **incremental link index**: per-link
  unfrozen weight totals and member counts, updated by delta when a flow
  freezes, instead of re-summing every link's membership twice per round.
* Flow link lists are cached on the :class:`~repro.netsim.flows.Flow`
  and :class:`~repro.netsim.routing.Path` objects and invalidated on
  reroute, so a pass never re-materializes ``path.links()``.
* :meth:`FluidNetwork.update` has a **steady-state fast path**: when
  neither the topology version, the flow-set version, nor the active
  flow set changed since the last pass, the previous
  :class:`AllocationResult` is reused and only smoothing/accounting run.

The pre-optimization algorithm is kept verbatim (plus the shared epsilon
and stall-guard fixes) as :func:`max_min_allocate_reference`; a seeded
property test asserts equivalence within 1e-9 relative across random
topologies and flow mixes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..telemetry import metrics, trace
from .engine import PeriodicProcess, Simulator
from .flows import Flow, FlowSet
from .topology import Topology

LinkKey = Tuple[str, str]

# Cached process-wide telemetry (DESIGN.md "Telemetry"): one attribute
# add per epoch / per pass; the steady-state fast path pays exactly two
# counter increments and one flag test, nothing else.
_MET = metrics()
_TRACE = trace()
_C_UPDATES = _MET.counter(
    "fluid_updates_total", "fluid epochs processed (passes + reuses)")
_C_PASSES = _MET.counter(
    "fluid_allocation_passes_total", "actual max-min allocator runs")
_C_FASTPATH_HITS = _MET.counter(
    "fluid_fastpath_hits_total",
    "epochs served by the dirty-flag steady-state fast path")
_C_FASTPATH_MISSES = _MET.counter(
    "fluid_fastpath_misses_total",
    "epochs where changed inputs forced a real allocation pass")
_C_FREEZE_ROUNDS = _MET.counter(
    "fluid_freeze_rounds_total",
    "progressive-filling rounds executed by the optimized allocator")
_C_STALL_FREEZES = _MET.counter(
    "fluid_stall_freezes_total",
    "rounds resolved by the numerical stall guard")

#: Saturation test threshold, as a *fraction of link capacity*.  An
#: absolute epsilon mis-scales against bps-magnitude capacities
#: (1e6–1e10): near-saturated links would never freeze and the filling
#: loop would spin extra rounds shaving off sub-bit residues.
SATURATION_EPS = 1e-9

#: Demand-reached test threshold, as a fraction of the flow's demand.
DEMAND_EPS = 1e-9


@dataclass
class AllocationResult:
    """The outcome of one allocation pass (rates before smoothing)."""

    rates: Dict[int, float] = field(default_factory=dict)
    link_load: Dict[LinkKey, float] = field(default_factory=dict)
    link_loss: Dict[LinkKey, float] = field(default_factory=dict)


def _link_capacities(topo: Topology) -> Dict[LinkKey, float]:
    return {key: link.capacity_bps for key, link in topo.links.items()}


def _compute_losses(load: Dict[LinkKey, float],
                    capacities: Dict[LinkKey, float]) -> Dict[LinkKey, float]:
    return {key: (0.0 if total <= capacities[key]
                  else 1.0 - capacities[key] / total)
            for key, total in load.items()}


def max_min_allocate(topo: Topology, flows: List[Flow]) -> AllocationResult:
    """One-shot weighted max-min allocation over the flows' current paths.

    Flows without a path — or whose path crosses a link that no longer
    exists (e.g. removed by switch repurposing) — are allocated zero.
    Returns instantaneous (unsmoothed) rates plus per-link load and loss.

    Semantically equivalent to :func:`max_min_allocate_reference`, but
    restructured around an incremental link index (see module docstring).
    """
    result = AllocationResult()
    capacities = _link_capacities(topo)
    load = dict.fromkeys(capacities, 0.0)
    live_keys = set(load)

    # Split flows once, pairing each with its cached link tuple and its
    # effective demand (constant for the pass — nothing here mutates
    # flows — so it is read once instead of once per filling round);
    # flows crossing removed links are zero-routed up front so the hot
    # loops below never need membership guards.
    inelastic: List[Tuple[Flow, tuple, float]] = []
    elastic: List[Tuple[Flow, tuple, float]] = []
    for flow in flows:
        links = flow.path_links()
        if links is None or not live_keys.issuperset(links):
            result.rates[flow.flow_id] = 0.0
        elif flow.elastic:
            elastic.append((flow, links, flow.effective_demand_bps))
        else:
            inelastic.append((flow, links, flow.effective_demand_bps))

    # Pass 1: inelastic flows charge their (policed) demand outright.
    for flow, links, demand in inelastic:
        result.rates[flow.flow_id] = demand
        for key in links:
            load[key] += demand

    # Pass 2: progressive filling for elastic flows, driven by the
    # incremental link index: per-link unfrozen weight totals and member
    # counts maintained by delta updates as flows freeze.  The unfrozen
    # entries carry (flow, links, demand, demand-reached threshold,
    # weight); the scalar tail is pass-constant, hoisted out of the
    # round loops.
    rate: Dict[int, float] = {}
    members: Dict[LinkKey, List[Flow]] = {}
    link_weight: Dict[LinkKey, float] = {}
    link_count: Dict[LinkKey, int] = {}
    unfrozen: Dict[int, Tuple[Flow, tuple, float, float, float]] = {}
    for flow, links, demand in elastic:
        rate[flow.flow_id] = 0.0
        if demand <= 0:
            continue
        unfrozen[flow.flow_id] = (flow, links, demand,
                                  demand * (1.0 - DEMAND_EPS), flow.weight)
        for key in links:
            if key in link_weight:
                link_weight[key] += flow.weight
                link_count[key] += 1
                members[key].append(flow)
            else:
                link_weight[key] = flow.weight
                link_count[key] = 1
                members[key] = [flow]
    remaining = {key: max(0.0, capacities[key] - load[key])
                 for key in link_weight}
    sat_eps = {key: capacities[key] * SATURATION_EPS for key in link_weight}

    rounds = 0
    while unfrozen:
        rounds += 1
        # Largest uniform per-unit-weight increment before a constraint
        # binds: link headroom per unfrozen weight, or flow headroom.
        delta = float("inf")
        for key, count in link_count.items():
            if count:
                step = remaining[key] / link_weight[key]
                if step < delta:
                    delta = step
        for fid, (_flow, _links, demand, _thresh, weight) in unfrozen.items():
            headroom = (demand - rate[fid]) / weight
            if headroom < delta:
                delta = headroom
        if delta == float("inf"):
            break
        if delta > 0:
            for fid, (_flow, _links, _demand, _thresh, weight) \
                    in unfrozen.items():
                rate[fid] += delta * weight
            for key, count in link_count.items():
                if count:
                    remaining[key] = max(
                        0.0, remaining[key] - delta * link_weight[key])

        # Freeze flows that hit their demand or sit on a saturated link
        # (capacity-relative saturation test).
        saturated = {key for key, count in link_count.items()
                     if count and remaining[key] <= sat_eps[key]}
        newly_frozen = []
        if saturated:
            for fid, (_flow, links, _demand, thresh, _weight) \
                    in unfrozen.items():
                if rate[fid] >= thresh:
                    newly_frozen.append(fid)
                elif not saturated.isdisjoint(links):
                    newly_frozen.append(fid)
        else:
            for fid, (_flow, _links, _demand, thresh, _weight) \
                    in unfrozen.items():
                if rate[fid] >= thresh:
                    newly_frozen.append(fid)
        if not newly_frozen:
            # Numerical stall guard: freeze everything touching the most
            # loaded active link (least relative headroom) to guarantee
            # termination.
            newly_frozen = _stall_freeze(link_count, remaining, capacities,
                                         members, unfrozen)
            if not newly_frozen:
                break
            _C_STALL_FREEZES.inc()
        for fid in newly_frozen:
            _flow, links, _demand, _thresh, weight = unfrozen.pop(fid)
            for key in links:
                link_weight[key] -= weight
                link_count[key] -= 1
                if link_count[key] == 0:
                    # Pin the total so float residue cannot linger.
                    link_weight[key] = 0.0

    _C_FREEZE_ROUNDS.inc(rounds)

    for flow, links, demand in elastic:
        granted = min(rate[flow.flow_id], demand)
        result.rates[flow.flow_id] = granted
        for key in links:
            load[key] += granted

    result.link_load = load
    result.link_loss = _compute_losses(load, capacities)
    return result


def _stall_freeze(link_count: Dict[LinkKey, int],
                  remaining: Dict[LinkKey, float],
                  capacities: Dict[LinkKey, float],
                  members: Dict[LinkKey, List[Flow]],
                  unfrozen: Dict[int, tuple]) -> List[int]:
    """Pick the active link with the least relative headroom and freeze
    every unfrozen flow crossing it."""
    worst = None
    worst_headroom = float("inf")
    for key, count in link_count.items():
        if not count:
            continue
        headroom = remaining[key] / capacities[key]
        if headroom < worst_headroom:
            worst = key
            worst_headroom = headroom
    if worst is None:
        return []
    return [f.flow_id for f in members[worst] if f.flow_id in unfrozen]


def max_min_allocate_reference(topo: Topology,
                               flows: List[Flow]) -> AllocationResult:
    """The pre-optimization allocator, kept as the semantic reference.

    O(rounds × links × flows): it re-materializes ``path.links()`` in
    every loop and re-sums per-link weights twice per round.  The
    epsilon handling and the stall guard are shared with the optimized
    :func:`max_min_allocate` so the two stay numerically equivalent (the
    equivalence property test pins this within 1e-9 relative).
    """
    result = AllocationResult()
    capacities = _link_capacities(topo)
    load: Dict[LinkKey, float] = {key: 0.0 for key in capacities}

    routable = []
    for flow in flows:
        if flow.path is None or any(key not in load
                                    for key in flow.path.links()):
            result.rates[flow.flow_id] = 0.0
        else:
            routable.append(flow)

    # Pass 1: inelastic flows charge their (policed) demand outright.
    for flow in routable:
        if not flow.elastic:
            result.rates[flow.flow_id] = flow.effective_demand_bps
            for key in flow.path.links():
                load[key] += flow.effective_demand_bps

    # Pass 2: progressive filling for elastic flows.
    elastic = [f for f in routable if f.elastic]
    rate = {f.flow_id: 0.0 for f in elastic}
    flows_on_link: Dict[LinkKey, List[Flow]] = {}
    for flow in elastic:
        if flow.effective_demand_bps <= 0:
            continue
        for key in flow.path.links():
            flows_on_link.setdefault(key, []).append(flow)
    remaining = {key: max(0.0, capacities[key] - load[key])
                 for key in flows_on_link}
    unfrozen = {f.flow_id: f for f in elastic if f.effective_demand_bps > 0}

    while unfrozen:
        delta = float("inf")
        for key, link_members in flows_on_link.items():
            weight_here = sum(f.weight for f in link_members
                              if f.flow_id in unfrozen)
            if weight_here > 0:
                delta = min(delta, remaining[key] / weight_here)
        for flow in unfrozen.values():
            headroom = ((flow.effective_demand_bps - rate[flow.flow_id])
                        / flow.weight)
            delta = min(delta, headroom)
        if delta == float("inf"):
            break
        if delta > 0:
            for flow in unfrozen.values():
                rate[flow.flow_id] += delta * flow.weight
            for key, link_members in flows_on_link.items():
                weight_here = sum(f.weight for f in link_members
                                  if f.flow_id in unfrozen)
                if weight_here > 0:
                    remaining[key] = max(0.0,
                                         remaining[key] - delta * weight_here)

        saturated = {key for key, rem in remaining.items()
                     if rem <= capacities[key] * SATURATION_EPS}
        newly_frozen = []
        for fid, flow in unfrozen.items():
            if rate[fid] >= flow.effective_demand_bps * (1.0 - DEMAND_EPS):
                newly_frozen.append(fid)
                continue
            if any(key in saturated for key in flow.path.links()):
                newly_frozen.append(fid)
        if not newly_frozen:
            # Stall guard (same rule as the optimized allocator): freeze
            # everything touching the most loaded active link.
            worst = None
            worst_headroom = float("inf")
            for key, link_members in flows_on_link.items():
                if not any(f.flow_id in unfrozen for f in link_members):
                    continue
                headroom = remaining[key] / capacities[key]
                if headroom < worst_headroom:
                    worst = key
                    worst_headroom = headroom
            if worst is None:
                break
            newly_frozen = [f.flow_id for f in flows_on_link[worst]
                            if f.flow_id in unfrozen]
        for fid in newly_frozen:
            del unfrozen[fid]

    for flow in elastic:
        result.rates[flow.flow_id] = min(rate[flow.flow_id],
                                         flow.effective_demand_bps)
        for key in flow.path.links():
            load[key] += result.rates[flow.flow_id]

    result.link_load = load
    result.link_loss = _compute_losses(load, capacities)
    return result


class FluidNetwork:
    """Periodically reallocates flow rates and updates link/flow state.

    Parameters
    ----------
    update_interval:
        Seconds between allocation passes.  The Figure 3 experiment uses
        10 ms, two orders of magnitude finer than the baseline's 30 s TE
        period and comparable to the RTT-scale FastFlex mode changes.
    tcp_tau:
        Time constant of the first-order rate smoothing for elastic flows
        (models TCP ramping); inelastic flows change rate instantly.

    Steady-state fast path: an epoch whose allocation inputs are
    unchanged — same topology version, same flow-set version, same set of
    active flows — reuses the previous :class:`AllocationResult` instead
    of re-running the allocator; only smoothing and delivery accounting
    run.  :attr:`allocation_passes` counts actual allocator runs and
    :attr:`updates` counts epochs (their difference is the number of
    epochs the fast path served).
    """

    def __init__(self, topo: Topology, flows: Optional[FlowSet] = None,
                 update_interval: float = 0.01, tcp_tau: float = 0.05):
        if update_interval <= 0:
            raise ValueError("update_interval must be positive")
        self.topo = topo
        self.sim: Simulator = topo.sim
        self.flows = flows if flows is not None else FlowSet()
        self.update_interval = update_interval
        self.tcp_tau = tcp_tau
        self.last_result: Optional[AllocationResult] = None
        self._process: Optional[PeriodicProcess] = None
        self._last_update: Optional[float] = None
        #: Sharded-mode boundary conditions (see ``repro.shard``): when a
        #: flow id appears in :attr:`rate_pins`, its smoothing target is
        #: the pinned rate instead of this network's allocation; entries
        #: in :attr:`loss_pins` are per-link loss factors applied to the
        #: flow's survival in path order.  Both dicts are empty outside
        #: sharded runs, and every float operation on the normal path is
        #: unchanged when they are empty.
        self.rate_pins: Dict[int, float] = {}
        self.loss_pins: Dict[int, Tuple[float, ...]] = {}
        #: Observers called after every update with (now, result).
        self.on_update: list = []
        #: Number of epochs processed (allocation passes + reuses).
        self.updates = 0
        #: Number of actual allocator runs (excludes fast-path reuses).
        self.allocation_passes = 0
        self._seen_topo_version = -1
        self._seen_flow_version = -1
        self._active_ids: Optional[FrozenSet[int]] = None

    # ------------------------------------------------------------------
    def start(self) -> "FluidNetwork":
        """Begin periodic updates (first one immediately)."""
        self._process = self.sim.every(self.update_interval, self.update)
        return self

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    # ------------------------------------------------------------------
    def update(self) -> AllocationResult:
        """Run one allocation pass and commit it to flows and links."""
        now = self.sim.now
        dt = (0.0 if self._last_update is None
              else now - self._last_update)
        self._last_update = now
        self.updates += 1
        _C_UPDATES.inc()

        active = self.flows.active(now)
        active_ids = frozenset(f.flow_id for f in active)
        topo_version = self.topo.version
        flow_version = self.flows.version
        if (self.last_result is None
                or topo_version != self._seen_topo_version
                or flow_version != self._seen_flow_version
                or active_ids != self._active_ids):
            result = max_min_allocate(self.topo, active)
            self.allocation_passes += 1
            _C_PASSES.inc()
            _C_FASTPATH_MISSES.inc()
            self._seen_topo_version = topo_version
            self._seen_flow_version = flow_version
            self._active_ids = active_ids
            if _TRACE.enabled:
                _TRACE.emit(
                    "allocation_pass", sim_time=now,
                    active_flows=len(active),
                    topo_version=topo_version,
                    flow_version=flow_version,
                    pass_number=self.allocation_passes)
        else:
            result = self.last_result
            _C_FASTPATH_HITS.inc()

        # Smooth elastic rates toward their allocation; account delivery.
        # This commit loop runs once per flow per epoch — the dominant
        # *linear* cost of an update — so per-flow attribute traffic is
        # routed through ``flow.__dict__`` directly.  That is safe only
        # because every field written here (rate_bps, goodput_bps,
        # loss_rate, bytes_delivered) is an allocation *output*, outside
        # ``_ALLOC_FIELDS``, for which ``Flow.__setattr__`` is a plain
        # ``object.__setattr__`` with no dirty notification.
        alpha = 1.0 if self.tcp_tau <= 0 or dt <= 0 else \
            1.0 - math.exp(-dt / self.tcp_tau)
        smoothed_load: Dict[LinkKey, float] = {
            key: 0.0 for key in self.topo.links}
        live_keys = set(smoothed_load)
        rate_pins = self.rate_pins
        loss_pins = self.loss_pins
        rates = result.rates
        link_loss = result.link_loss
        for flow in self.flows:
            fd = flow.__dict__
            if not flow.active(now):
                fd["rate_bps"] = 0.0
                fd["goodput_bps"] = 0.0
                fd["loss_rate"] = 0.0
                continue
            links = flow.path_links()
            if links is not None and not live_keys.issuperset(links):
                # The cached path crosses a link that no longer exists
                # (switch repurposing removed it): zero-route the flow
                # until a reroute assigns it a live path.
                fd["rate_bps"] = 0.0
                fd["goodput_bps"] = 0.0
                fd["loss_rate"] = 1.0
                continue
            fid = fd["flow_id"]
            pinned_target = rate_pins.get(fid) if rate_pins else None
            target = (pinned_target if pinned_target is not None
                      else rates.get(fid, 0.0))
            if fd["elastic"]:
                rate = fd["rate_bps"]
                rate += (target - rate) * alpha
            else:
                rate = target
            fd["rate_bps"] = rate
            survival = 1.0
            if links is not None:
                for key in links:
                    smoothed_load[key] += rate
                    survival *= 1.0 - link_loss.get(key, 0.0)
            pinned_losses = loss_pins.get(fid) if loss_pins else None
            if pinned_losses is not None:
                for loss in pinned_losses:
                    survival *= 1.0 - loss
            fd["loss_rate"] = 1.0 - survival
            goodput = rate * survival
            fd["goodput_bps"] = goodput
            fd["bytes_delivered"] = fd["bytes_delivered"] + goodput * dt / 8.0

        # Publish loads so packet-level traffic sees congestion.
        for key, link in self.topo.links.items():
            link.fluid_load_bps = smoothed_load.get(key, 0.0)

        self.last_result = result
        for observer in self.on_update:
            observer(now, result)
        return result

    # ------------------------------------------------------------------
    # Queries used by detectors and experiments
    # ------------------------------------------------------------------
    def link_utilization(self, a: str, b: str) -> float:
        return self.topo.link(a, b).utilization

    def aggregate_goodput(self, flows: List[Flow]) -> float:
        return sum(f.goodput_bps for f in flows)

    def normal_goodput(self, now: Optional[float] = None) -> float:
        now = self.sim.now if now is None else now
        return sum(f.goodput_bps for f in self.flows.normal()
                   if f.active(now))
