"""Route computation: paths, ECMP tables, and path utilities.

Two kinds of routing state coexist (mirroring the paper's split between
bulk traffic and control traffic):

* **Flow paths** — bulk data flows carry an explicit path assigned by a
  traffic-engineering controller or changed at runtime by rerouting
  boosters; the fluid allocator charges links along that path.
* **Switch tables** — hop-by-hop ECMP next-hop tables installed on the
  switches, used by packet-level traffic (probes, traceroutes, ICMP,
  mode-change messages).

This module computes both.  Path queries are served by the versioned
:mod:`routecache` layer — native heap Dijkstra trees and a Yen's
k-shortest-paths kernel memoized on ``Topology.version`` — instead of
rebuilding a networkx graph and recomputing from scratch per call.  The
original networkx implementations are kept as ``*_reference`` for the
equivalence property tests (``tests/netsim/test_routing_equivalence.py``)
and as the baseline the routing microbenchmark measures against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from .topology import Topology


class NoRouteError(RuntimeError):
    """Raised when no path exists between the requested endpoints."""


@dataclass(frozen=True)
class Path:
    """An explicit node-level path (hosts included at the ends)."""

    nodes: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.nodes) < 1:
            raise ValueError("a path needs at least one node")
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError(f"path has a loop: {self.nodes}")
        # Paths are immutable, so the link keys can be materialized once;
        # the fluid allocator reads them on every pass (hot path).  The
        # frozenset backs O(1) ``contains_link`` membership — reroute
        # boosters ask it per flow per detection.
        link_keys = tuple(zip(self.nodes, self.nodes[1:]))
        object.__setattr__(self, "_link_keys", link_keys)
        object.__setattr__(self, "_link_key_set", frozenset(link_keys))

    @classmethod
    def of(cls, nodes: Sequence[str]) -> "Path":
        return cls(tuple(nodes))

    @property
    def src(self) -> str:
        return self.nodes[0]

    @property
    def dst(self) -> str:
        return self.nodes[-1]

    @property
    def hops(self) -> int:
        return len(self.nodes) - 1

    @property
    def link_keys(self) -> Tuple[Tuple[str, str], ...]:
        """Directed (src, dst) link keys along the path, as an immutable
        tuple computed once at construction.  Hot-path accessor: the fluid
        allocator and per-flow caches read this instead of :meth:`links`,
        which allocates a fresh list per call."""
        return self._link_keys  # type: ignore[attr-defined]

    def links(self) -> List[Tuple[str, str]]:
        """Directed (src, dst) link keys along the path."""
        return list(self._link_keys)  # type: ignore[attr-defined]

    def contains_link(self, a: str, b: str,
                      either_direction: bool = True) -> bool:
        links = self._link_key_set  # type: ignore[attr-defined]
        if (a, b) in links:
            return True
        return either_direction and (b, a) in links

    def latency(self, topo: Topology) -> float:
        """Total propagation delay along the path."""
        return sum(topo.link(a, b).delay_s for a, b in self.link_keys)

    def min_capacity(self, topo: Topology) -> float:
        """Bottleneck link capacity along the path."""
        return min(topo.link(a, b).capacity_bps for a, b in self.link_keys)

    def __iter__(self):
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __str__(self) -> str:
        return "->".join(self.nodes)


# ----------------------------------------------------------------------
# Path computation (cache-served; *_reference = original networkx)
# ----------------------------------------------------------------------
def shortest_path(topo: Topology, src: str, dst: str) -> Path:
    """The delay-weighted shortest path."""
    nodes = topo.route_cache.shortest_node_path(src, dst)
    if nodes is None:
        raise NoRouteError(f"no path {src} -> {dst}")
    return Path(nodes)


def shortest_path_reference(topo: Topology, src: str, dst: str) -> Path:
    """Original uncached networkx implementation (kept for equivalence
    tests and benchmarks; rebuilds the graph on every call)."""
    try:
        nodes = nx.shortest_path(topo.build_graph(), src, dst,
                                 weight="weight")
    except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
        raise NoRouteError(f"no path {src} -> {dst}") from exc
    return Path.of(nodes)


def all_shortest_paths(topo: Topology, src: str, dst: str) -> List[Path]:
    """Every equal-cost shortest path (deterministic sorted-DFS order)."""
    node_paths = topo.route_cache.all_shortest_node_paths(src, dst)
    if node_paths is None:
        raise NoRouteError(f"no path {src} -> {dst}")
    return [Path(nodes) for nodes in node_paths]


def all_shortest_paths_reference(topo: Topology, src: str,
                                 dst: str) -> List[Path]:
    """Original uncached networkx implementation."""
    try:
        paths = nx.all_shortest_paths(topo.build_graph(), src, dst,
                                      weight="weight")
        return [Path.of(p) for p in paths]
    except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
        raise NoRouteError(f"no path {src} -> {dst}") from exc


def k_shortest_paths(topo: Topology, src: str, dst: str, k: int) -> List[Path]:
    """Up to ``k`` loop-free paths in increasing delay order (Yen's).

    Served from the per-(src, dst, k) candidate memo: a periodic TE pass
    re-requesting unchanged commodities costs a dictionary lookup.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if src == dst:
        raise ValueError(
            f"k_shortest_paths needs two distinct endpoints, got "
            f"src == dst == {src!r}")
    node_paths = topo.route_cache.k_shortest_node_paths(src, dst, k)
    if node_paths is None:
        raise NoRouteError(f"no path {src} -> {dst}")
    return [Path(nodes) for nodes in node_paths]


def k_shortest_paths_reference(topo: Topology, src: str, dst: str,
                               k: int) -> List[Path]:
    """Original uncached networkx (Yen's) implementation."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if src == dst:
        raise ValueError(
            f"k_shortest_paths needs two distinct endpoints, got "
            f"src == dst == {src!r}")
    try:
        generator = nx.shortest_simple_paths(topo.build_graph(), src, dst,
                                             weight="weight")
        result = []
        for nodes in generator:
            result.append(Path.of(nodes))
            if len(result) >= k:
                break
        return result
    except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
        raise NoRouteError(f"no path {src} -> {dst}") from exc


def edge_disjoint_paths(topo: Topology, src: str, dst: str) -> List[Path]:
    """A maximal set of edge-disjoint paths (for detour planning)."""
    try:
        paths = nx.edge_disjoint_paths(topo.graph(), src, dst)
        return sorted((Path.of(list(p)) for p in paths),
                      key=lambda p: (p.hops, p.nodes))
    except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
        raise NoRouteError(f"no path {src} -> {dst}") from exc


# ----------------------------------------------------------------------
# Switch table installation
# ----------------------------------------------------------------------
def install_host_routes(topo: Topology,
                        ecmp: bool = True) -> Dict[str, Dict[str, List[str]]]:
    """Install next-hop tables on every switch for every host destination.

    With ``ecmp=True`` every equal-cost next hop is installed; otherwise
    only the first shortest path's.  Returns the table that was installed,
    keyed ``switch -> dst_host -> [next hops]`` (handy for tests).

    One cached SSSP tree per host serves every switch's next hops toward
    it — and the same trees back later ``shortest_path`` queries and
    Yen spur computations for free.
    """
    cache = topo.route_cache
    switch_names = topo.switch_names
    installed: Dict[str, Dict[str, List[str]]] = {}
    for host in topo.host_names:
        # Predecessor-based next hops toward `host` from every switch.
        preds = cache.sssp_tree(host).preds
        for sw_name in switch_names:
            pred_list = preds.get(sw_name)
            if not pred_list:
                continue
            next_hops = sorted(pred_list)
            if not ecmp:
                next_hops = next_hops[:1]
            switch = topo.switch(sw_name)
            switch.set_route(host, next_hops)
            installed.setdefault(sw_name, {})[host] = next_hops
    return installed


def install_host_routes_reference(
        topo: Topology, ecmp: bool = True) -> Dict[str, Dict[str, List[str]]]:
    """Original uncached networkx implementation (one
    ``dijkstra_predecessor_and_distance`` per host per call)."""
    graph = topo.build_graph()
    installed: Dict[str, Dict[str, List[str]]] = {}
    for host in topo.host_names:
        preds, _ = nx.dijkstra_predecessor_and_distance(
            graph, host, weight="weight")
        for sw_name in topo.switch_names:
            if sw_name not in preds or not preds[sw_name]:
                continue
            next_hops = sorted(preds[sw_name])
            if not ecmp:
                next_hops = next_hops[:1]
            switch = topo.switch(sw_name)
            switch.set_route(host, next_hops)
            installed.setdefault(sw_name, {})[host] = next_hops
    return installed


def install_switch_routes(topo: Topology,
                          ecmp: bool = True) -> Dict[str, Dict[str, List[str]]]:
    """Install next-hop tables for *switch* destinations too.

    Switch-to-switch control traffic (detector synchronization digests,
    unicast mode probes) needs multi-hop routes between switches;
    :func:`install_host_routes` only covers host destinations.
    """
    cache = topo.route_cache
    switch_names = topo.switch_names
    installed: Dict[str, Dict[str, List[str]]] = {}
    for target in switch_names:
        preds = cache.sssp_tree(target).preds
        for sw_name in switch_names:
            if sw_name == target:
                continue
            pred_list = preds.get(sw_name)
            if not pred_list:
                continue
            next_hops = sorted(pred_list)
            if not ecmp:
                next_hops = next_hops[:1]
            topo.switch(sw_name).set_route(target, next_hops)
            installed.setdefault(sw_name, {})[target] = next_hops
    return installed


def install_switch_routes_reference(
        topo: Topology, ecmp: bool = True) -> Dict[str, Dict[str, List[str]]]:
    """Original uncached networkx implementation."""
    graph = topo.build_graph()
    installed: Dict[str, Dict[str, List[str]]] = {}
    for target in topo.switch_names:
        preds, _ = nx.dijkstra_predecessor_and_distance(
            graph, target, weight="weight")
        for sw_name in topo.switch_names:
            if sw_name == target or sw_name not in preds or not preds[sw_name]:
                continue
            next_hops = sorted(preds[sw_name])
            if not ecmp:
                next_hops = next_hops[:1]
            topo.switch(sw_name).set_route(target, next_hops)
            installed.setdefault(sw_name, {})[target] = next_hops
    return installed


def install_path_route(topo: Topology, path: Path, dst: Optional[str] = None
                       ) -> None:
    """Pin per-destination routes along an explicit path.

    Every switch on ``path`` gets its next hop toward ``dst`` (defaulting
    to the path's final node) replaced by the path's successor, so
    packet-level traffic follows the same route the fluid model charges.
    """
    target = dst if dst is not None else path.dst
    for here, nxt in path.link_keys:
        node = topo.node(here)
        if hasattr(node, "set_route"):
            node.set_route(target, [nxt])


def install_flow_route(topo: Topology, path: Path) -> None:
    """Pin the (src, dst) pair onto an explicit path on every switch.

    The pair key is (path.src, path.dst) — typically two hosts.  Used by
    TE deployments and rerouting defenses so packet-level traffic (and
    the attacker's traceroutes) follow the paths the fluid model charges.
    """
    pair = (path.src, path.dst)
    for here, nxt in path.link_keys:
        node = topo.node(here)
        if hasattr(node, "flow_routes"):
            node.flow_routes[pair] = nxt


def clear_flow_route(topo: Topology, src: str, dst: str) -> None:
    """Remove any pinned route for the pair from every switch."""
    pair = (src, dst)
    for name in topo.switch_names:
        topo.switch(name).flow_routes.pop(pair, None)


def default_path_for(topo: Topology, src: str, dst: str) -> Path:
    """The path hop-by-hop forwarding gives the pair from the *static*
    destination tables (ignoring pinned flow routes).

    This is both how freshly arriving flows get routed before any TE or
    defense touches them, and what a NetHide-style obfuscator reports to
    suspicious traceroutes (the pre-attack view of the network).
    """
    from .packet import Packet  # local import to avoid cycle at module load
    src_host = topo.host(src)
    if src_host.gateway is None:
        raise NoRouteError(f"host {src} has no gateway")
    probe = Packet(src=src, dst=dst)
    nodes = [src]
    current = src_host.gateway
    seen = {src}
    while current != dst:
        if current in seen:
            raise NoRouteError(f"static routing loop at {current} "
                               f"for {src}->{dst}")
        seen.add(current)
        nodes.append(current)
        switch = topo.switch(current)
        candidates = switch.routes.get(dst, [])
        if not candidates:
            raise NoRouteError(f"{current} has no route to {dst}")
        current = switch._ecmp_pick(probe, candidates)
    nodes.append(dst)
    return Path.of(nodes)


def install_fast_reroute_alternates(topo: Topology) -> None:
    """Install per-destination loop-free alternates (LFA) on every switch.

    The alternate ``A`` protecting switch ``S``'s next hop ``N`` toward
    destination ``d`` must satisfy the node-protecting LFA condition
    ``dist(A, d) < dist(A, S) + dist(S, d)`` — guaranteeing A's own
    shortest path toward ``d`` does not come back through ``S`` (no
    micro-loops) and, because it is a strict detour-free inequality,
    typically avoids the failed region entirely.

    Distances come from the cached per-switch SSSP trees (the same trees
    :func:`install_switch_routes` populates), replacing the former
    all-pairs networkx Dijkstra.
    """
    cache = topo.route_cache
    destinations = topo.host_names + topo.switch_names
    switch_names = set(topo.switch_names)
    dist: Dict[str, Dict[str, float]] = {}

    def dist_from(root: str) -> Dict[str, float]:
        table = dist.get(root)
        if table is None:
            table = cache.sssp_tree(root).dist
            dist[root] = table
        return table

    for sw_name in topo.switch_names:
        switch = topo.switch(sw_name)
        switch_neighbors = [n for n in switch.neighbors
                            if n in switch_names]
        sw_dist = dist_from(sw_name)
        for primary in switch.neighbors:
            candidates = [n for n in switch_neighbors if n != primary]
            if not candidates:
                continue
            for dst in destinations:
                if dst == sw_name:
                    continue
                loop_free = [
                    n for n in candidates
                    if dst in dist_from(n)
                    and dist_from(n)[dst] < dist_from(n)[sw_name]
                    + sw_dist[dst]
                ]
                if not loop_free:
                    continue
                best = min(loop_free, key=lambda n: (dist_from(n)[dst], n))
                switch.frr_dst[(primary, dst)] = best


def install_fast_reroute_alternates_reference(topo: Topology) -> None:
    """Original uncached networkx implementation (all-pairs Dijkstra)."""
    graph = topo.build_graph()
    dist = dict(nx.all_pairs_dijkstra_path_length(graph, weight="weight"))
    destinations = topo.host_names + topo.switch_names
    for sw_name in topo.switch_names:
        switch = topo.switch(sw_name)
        switch_neighbors = [n for n in switch.neighbors
                            if n in topo.switch_names]
        for primary in switch.neighbors:
            candidates = [n for n in switch_neighbors if n != primary]
            if not candidates:
                continue
            for dst in destinations:
                if dst == sw_name or dst not in dist:
                    continue
                loop_free = [
                    n for n in candidates
                    if dst in dist.get(n, {})
                    and dist[n][dst] < dist[n][sw_name] + dist[sw_name][dst]
                ]
                if not loop_free:
                    continue
                best = min(loop_free, key=lambda n: (dist[n][dst], n))
                switch.frr_dst[(primary, dst)] = best
