"""Metric collection: time series of throughput, utilization, and modes.

The Figure 3 reproduction needs the normalized throughput of normal flows
sampled over time; the ablations additionally record link utilizations and
per-switch mode occupancy.  :class:`Monitor` samples on a fixed period and
keeps everything as plain (time, value) series that experiments print or
assert on.

Gauges are one system with the telemetry registry: every series a monitor
samples is mirrored into the ``monitor_gauge`` family of the process-wide
:class:`~repro.telemetry.MetricsRegistry` (labeled by series name), so a
``--metrics`` snapshot carries the latest sampled value of everything a
monitor watches without a second registration step.  The full history
stays in :class:`TimeSeries`; the registry holds the current value.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..telemetry import Gauge, MetricsRegistry, metrics
from .engine import PeriodicProcess
from .fluid import FluidNetwork


@dataclass
class TimeSeries:
    """An append-only (time, value) series with summary helpers."""

    name: str
    samples: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, t: float, value: float) -> None:
        self.samples.append((t, value))

    @property
    def times(self) -> List[float]:
        return [t for t, _ in self.samples]

    @property
    def values(self) -> List[float]:
        return [v for _, v in self.samples]

    def window(self, t0: float, t1: float) -> List[Tuple[float, float]]:
        return [(t, v) for t, v in self.samples if t0 <= t < t1]

    def mean_over(self, t0: float, t1: float) -> float:
        values = [v for _, v in self.window(t0, t1)]
        if not values:
            raise ValueError(f"no samples of {self.name!r} in [{t0}, {t1})")
        return statistics.fmean(values)

    def min_over(self, t0: float, t1: float) -> float:
        values = [v for _, v in self.window(t0, t1)]
        if not values:
            raise ValueError(f"no samples of {self.name!r} in [{t0}, {t1})")
        return min(values)

    def last(self) -> float:
        if not self.samples:
            raise ValueError(f"{self.name!r} has no samples")
        return self.samples[-1][1]

    def __len__(self) -> int:
        return len(self.samples)


class NormalizedGoodputProbe:
    """Picklable sampling callable: normal goodput over a fixed baseline.

    Monitors live inside engine checkpoints (the periodic sample event
    holds a reference to the whole monitor), so sampling functions must
    be plain objects rather than closures — closures cannot be pickled
    by :mod:`repro.checkpoint`.
    """

    __slots__ = ("fluid", "baseline_bps")

    def __init__(self, fluid: FluidNetwork, baseline_bps: float) -> None:
        self.fluid = fluid
        self.baseline_bps = baseline_bps

    def __call__(self) -> float:
        return self.fluid.normal_goodput() / self.baseline_bps


class LinkUtilizationProbe:
    """Picklable sampling callable: one link's combined utilization."""

    __slots__ = ("link",)

    def __init__(self, link) -> None:
        self.link = link

    def __call__(self) -> float:
        return self.link.utilization


class Monitor:
    """Samples registered gauges every ``period`` seconds of sim time.

    ``registry`` is where sampled values are mirrored as labeled gauges;
    it defaults to the process-wide telemetry registry.  Names stay
    unique per monitor (re-registering a name is an error even across
    ``stop()``/``start()`` cycles — the series object is the identity);
    two monitors may watch the same series name, in which case they share
    one registry gauge and the freshest sample wins.
    """

    def __init__(self, fluid: FluidNetwork, period: float = 0.5,
                 registry: Optional[MetricsRegistry] = None):
        if period <= 0:
            raise ValueError("monitor period must be positive")
        self.fluid = fluid
        self.sim = fluid.sim
        self.period = period
        self.registry = registry if registry is not None else metrics()
        self.series: Dict[str, TimeSeries] = {}
        self._gauges: Dict[str, Tuple[Callable[[], float], Gauge]] = {}
        self._process: Optional[PeriodicProcess] = None

    # ------------------------------------------------------------------
    def add_gauge(self, name: str, fn: Callable[[], float]) -> TimeSeries:
        if name in self._gauges:
            raise ValueError(f"gauge {name!r} already registered")
        mirror = self.registry.gauge(
            "monitor_gauge", "latest sampled value of each monitor series",
            labelnames=("series",)).labels(name)
        self._gauges[name] = (fn, mirror)
        self.series[name] = TimeSeries(name)
        return self.series[name]

    def watch_normal_goodput(self, baseline_bps: float,
                             name: str = "normal_goodput_norm") -> TimeSeries:
        """Track normal-flow goodput normalized to a no-attack baseline —
        the y-axis of Figure 3."""
        if baseline_bps <= 0:
            raise ValueError("baseline must be positive")
        return self.add_gauge(
            name, NormalizedGoodputProbe(self.fluid, baseline_bps))

    def watch_link_utilization(self, a: str, b: str,
                               name: Optional[str] = None) -> TimeSeries:
        label = name if name is not None else f"util:{a}->{b}"
        link = self.fluid.topo.link(a, b)
        return self.add_gauge(label, LinkUtilizationProbe(link))

    # ------------------------------------------------------------------
    def start(self) -> "Monitor":
        self._process = self.sim.every(self.period, self.sample)
        return self

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    def sample(self) -> None:
        now = self.sim.now
        for name, (fn, mirror) in self._gauges.items():
            value = fn()
            self.series[name].record(now, value)
            mirror.set(value)

    def get(self, name: str) -> TimeSeries:
        try:
            return self.series[name]
        except KeyError:
            raise KeyError(f"no series named {name!r}; have "
                           f"{sorted(self.series)}") from None
