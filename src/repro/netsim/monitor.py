"""Metric collection: time series of throughput, utilization, and modes.

The Figure 3 reproduction needs the normalized throughput of normal flows
sampled over time; the ablations additionally record link utilizations and
per-switch mode occupancy.  :class:`Monitor` samples on a fixed period and
keeps everything as plain (time, value) series that experiments print or
assert on.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .engine import PeriodicProcess
from .fluid import FluidNetwork


@dataclass
class TimeSeries:
    """An append-only (time, value) series with summary helpers."""

    name: str
    samples: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, t: float, value: float) -> None:
        self.samples.append((t, value))

    @property
    def times(self) -> List[float]:
        return [t for t, _ in self.samples]

    @property
    def values(self) -> List[float]:
        return [v for _, v in self.samples]

    def window(self, t0: float, t1: float) -> List[Tuple[float, float]]:
        return [(t, v) for t, v in self.samples if t0 <= t < t1]

    def mean_over(self, t0: float, t1: float) -> float:
        values = [v for _, v in self.window(t0, t1)]
        if not values:
            raise ValueError(f"no samples of {self.name!r} in [{t0}, {t1})")
        return statistics.fmean(values)

    def min_over(self, t0: float, t1: float) -> float:
        values = [v for _, v in self.window(t0, t1)]
        if not values:
            raise ValueError(f"no samples of {self.name!r} in [{t0}, {t1})")
        return min(values)

    def last(self) -> float:
        if not self.samples:
            raise ValueError(f"{self.name!r} has no samples")
        return self.samples[-1][1]

    def __len__(self) -> int:
        return len(self.samples)


class Monitor:
    """Samples registered gauges every ``period`` seconds of sim time."""

    def __init__(self, fluid: FluidNetwork, period: float = 0.5):
        if period <= 0:
            raise ValueError("monitor period must be positive")
        self.fluid = fluid
        self.sim = fluid.sim
        self.period = period
        self.series: Dict[str, TimeSeries] = {}
        self._gauges: Dict[str, Callable[[], float]] = {}
        self._process: Optional[PeriodicProcess] = None

    # ------------------------------------------------------------------
    def add_gauge(self, name: str, fn: Callable[[], float]) -> TimeSeries:
        if name in self._gauges:
            raise ValueError(f"gauge {name!r} already registered")
        self._gauges[name] = fn
        self.series[name] = TimeSeries(name)
        return self.series[name]

    def watch_normal_goodput(self, baseline_bps: float,
                             name: str = "normal_goodput_norm") -> TimeSeries:
        """Track normal-flow goodput normalized to a no-attack baseline —
        the y-axis of Figure 3."""
        if baseline_bps <= 0:
            raise ValueError("baseline must be positive")
        return self.add_gauge(
            name, lambda: self.fluid.normal_goodput() / baseline_bps)

    def watch_link_utilization(self, a: str, b: str,
                               name: Optional[str] = None) -> TimeSeries:
        label = name if name is not None else f"util:{a}->{b}"
        link = self.fluid.topo.link(a, b)
        return self.add_gauge(label, lambda: link.utilization)

    # ------------------------------------------------------------------
    def start(self) -> "Monitor":
        self._process = self.sim.every(self.period, self.sample)
        return self

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    def sample(self) -> None:
        now = self.sim.now
        for name, fn in self._gauges.items():
            self.series[name].record(now, fn())

    def get(self, name: str) -> TimeSeries:
        try:
            return self.series[name]
        except KeyError:
            raise KeyError(f"no series named {name!r}; have "
                           f"{sorted(self.series)}") from None
