"""Topology construction and canned networks.

Provides the :class:`Topology` builder plus the networks the experiments
run on:

* :func:`figure2_topology` — the paper's Figure 2 case-study network: an
  edge-to-edge network with two *critical* short paths (the LFA targets)
  and two longer detour paths.
* :func:`fat_tree` — a k-ary fat-tree (for Hula-style rerouting tests).
* :func:`abilene_like` — a small WAN for scheduler/placement benches.
* :func:`random_topology` — Waxman-ish random graphs for property tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import random
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..dataplane.resources import ResourceVector, TOFINO_LIKE
from .engine import Simulator
from .links import Link
from .node import Host, Node
from .routecache import RouteCache
from .switch import ProgrammableSwitch

GBPS = 1e9
MBPS = 1e6
MS = 1e-3
US = 1e-6


class Topology:
    """A network of hosts, switches, and duplex links."""

    def __init__(self, sim: Simulator, name: str = "net"):
        self.sim = sim
        self.name = name
        self.nodes: Dict[str, Node] = {}
        #: Directed links keyed by (src, dst) node names.
        self.links: Dict[Tuple[str, str], Link] = {}
        #: Bumped on every structural mutation (node/link add or remove,
        #: capacity change).  The fluid model compares it across epochs to
        #: decide whether a cached allocation is still valid, so all
        #: runtime mutations must go through the Topology/Link APIs.
        self.version = 0
        #: Versioned routing cache: graph snapshot, native SSSP trees,
        #: and k-shortest-path candidate memos, all invalidated off
        #: ``version`` (see DESIGN.md "Routing cache").
        self.route_cache = RouteCache(self)

    def _mark_mutated(self, *_args) -> None:
        self.version += 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_switch(self, name: str,
                   resources: ResourceVector = TOFINO_LIKE,
                   programmable: bool = True) -> ProgrammableSwitch:
        self._check_fresh(name)
        switch = ProgrammableSwitch(self.sim, name, resources,
                                    programmable=programmable)
        self.nodes[name] = switch
        self._mark_mutated()
        return switch

    @property
    def programmable_switch_names(self) -> List[str]:
        return [n for n in self.switch_names
                if self.switch(n).programmable]

    def add_host(self, name: str, gateway: Optional[str] = None) -> Host:
        self._check_fresh(name)
        host = Host(self.sim, name, gateway=gateway)
        self.nodes[name] = host
        self._mark_mutated()
        return host

    def attach_host(self, name: str, switch: str,
                    capacity_bps: float = 10 * GBPS,
                    delay_s: float = 10 * US) -> Host:
        """Create a host, link it to ``switch``, and set its gateway."""
        host = self.add_host(name, gateway=switch)
        self.add_duplex_link(name, switch, capacity_bps, delay_s)
        return host

    def add_duplex_link(self, a: str, b: str, capacity_bps: float,
                        delay_s: float,
                        queue_bytes: Optional[int] = None) -> Tuple[Link, Link]:
        node_a, node_b = self.node(a), self.node(b)
        kwargs = {} if queue_bytes is None else {"queue_bytes": queue_bytes}
        fwd = Link(self.sim, node_a, node_b, capacity_bps, delay_s, **kwargs)
        rev = Link(self.sim, node_b, node_a, capacity_bps, delay_s, **kwargs)
        node_a.attach_link(fwd)
        node_b.attach_link(rev)
        self.links[(a, b)] = fwd
        self.links[(b, a)] = rev
        # Runtime capacity changes must also invalidate cached allocations.
        fwd.on_change.append(self._mark_mutated)
        rev.on_change.append(self._mark_mutated)
        self._mark_mutated()
        return fwd, rev

    def remove_link(self, a: str, b: str) -> None:
        """Remove the duplex link between ``a`` and ``b`` (both directions).

        Models a port taken out of service, e.g. while a switch is
        repurposed.  Flows whose cached paths cross the removed link are
        zero-routed by the fluid model until something reroutes them.
        """
        removed = False
        for key in ((a, b), (b, a)):
            link = self.links.pop(key, None)
            if link is not None:
                link.src.links.pop(link.dst.name, None)
                link.detach()
                removed = True
        if not removed:
            raise KeyError(f"no link {a}<->{b} in {self.name}")
        self._mark_mutated()

    def remove_node(self, name: str) -> None:
        """Remove any node (switch or host) and every incident link.

        Engine-scheduled work owned by the node (periodic agents,
        traffic sources — anything registered via ``Node.own``) is
        cancelled, and the removed links' in-flight deliveries degrade
        to drops (``Link.detach``), so no dangling event fires against a
        node that is no longer in :attr:`nodes`.
        """
        node = self.node(name)
        for neighbor in list(node.links):
            self.remove_link(name, neighbor)
        # Sweep one-directional leftovers still pointing at the node
        # (e.g. a half-removed duplex pair or an external stitch).
        for key in [k for k in self.links if name in k]:
            link = self.links.pop(key)
            link.src.links.pop(link.dst.name, None)
            link.detach()
        node.retire()
        del self.nodes[name]
        self._mark_mutated()

    def remove_switch(self, name: str) -> None:
        """Remove a node and every link incident to it.

        Historical name — it now accepts *any* node, because hosts were
        previously impossible to remove (the old implementation
        type-checked the target as a switch while ``remove_link``
        handled host links fine).  :meth:`remove_host` and
        :meth:`remove_node` are equivalent spellings.
        """
        self.remove_node(name)

    def remove_host(self, name: str) -> None:
        """Remove a host and every link incident to it."""
        self.remove_node(name)

    def _check_fresh(self, name: str) -> None:
        if name in self.nodes:
            raise ValueError(f"node {name!r} already exists in {self.name}")

    # ------------------------------------------------------------------
    # Sub-topology extraction (sharded simulation, see repro.shard)
    # ------------------------------------------------------------------
    def subtopology(self, node_names, sim: Optional[Simulator] = None,
                    name: Optional[str] = None) -> "Topology":
        """Extract the induced sub-topology on ``node_names``.

        Builds a fresh :class:`Topology` (on ``sim``, defaulting to this
        topology's simulator) containing copies of the named nodes and
        every duplex link whose two endpoints are both included.
        Switches are recreated with their resource budget and
        programmability but *without* installed programs or routing
        state; hosts keep their gateway only when the gateway is also
        included.  Cut links (one endpoint outside the member set) are
        not copied — the sharded layer stitches those with boundary
        portals (see ``repro.shard.region``).
        """
        members = set(node_names)
        missing = members - set(self.nodes)
        if missing:
            raise KeyError(
                f"unknown nodes in subtopology: {sorted(missing)}")
        sub = Topology(sim if sim is not None else self.sim,
                       name=name if name is not None else f"{self.name}/sub")
        for node_name in sorted(members):
            node = self.nodes[node_name]
            if isinstance(node, ProgrammableSwitch):
                sub.add_switch(node_name, resources=node.ledger.budget,
                               programmable=node.programmable)
            elif isinstance(node, Host):
                gateway = node.gateway if node.gateway in members else None
                sub.add_host(node_name, gateway=gateway)
            else:
                raise TypeError(
                    f"cannot extract {type(node).__name__} {node_name!r}")
        for a, b in self.duplex_pairs():
            if a in members and b in members:
                link = self.links[(a, b)]
                sub.add_duplex_link(a, b, link.capacity_bps, link.delay_s,
                                    queue_bytes=link.queue_bytes)
        return sub

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise KeyError(f"no node named {name!r} in {self.name}") from None

    def switch(self, name: str) -> ProgrammableSwitch:
        node = self.node(name)
        if not isinstance(node, ProgrammableSwitch):
            raise TypeError(f"{name!r} is a {type(node).__name__}, not a switch")
        return node

    def host(self, name: str) -> Host:
        node = self.node(name)
        if not isinstance(node, Host):
            raise TypeError(f"{name!r} is a {type(node).__name__}, not a host")
        return node

    def link(self, a: str, b: str) -> Link:
        try:
            return self.links[(a, b)]
        except KeyError:
            raise KeyError(f"no link {a}->{b} in {self.name}") from None

    @property
    def switch_names(self) -> List[str]:
        return sorted(n for n, node in self.nodes.items()
                      if isinstance(node, ProgrammableSwitch))

    @property
    def host_names(self) -> List[str]:
        return sorted(n for n, node in self.nodes.items()
                      if isinstance(node, Host))

    def switches(self) -> List[ProgrammableSwitch]:
        return [self.nodes[n] for n in self.switch_names]  # type: ignore[list-item]

    def hosts(self) -> List[Host]:
        return [self.nodes[n] for n in self.host_names]  # type: ignore[list-item]

    def duplex_pairs(self) -> List[Tuple[str, str]]:
        """Each physical link once, as a sorted (a, b) pair."""
        seen = set()
        for (a, b) in self.links:
            pair = (a, b) if a < b else (b, a)
            seen.add(pair)
        return sorted(seen)

    # ------------------------------------------------------------------
    # Graph export (used by routing and the scheduler)
    # ------------------------------------------------------------------
    def graph(self) -> nx.Graph:
        """An undirected view with capacity/delay attributes.

        Edge weight is the propagation delay, which makes shortest-path
        routing latency-optimal (the forward direction's parameters are
        used; duplex links are symmetric by construction).

        The returned graph is memoized per :attr:`version` — treat it as
        read-only.  Use :meth:`build_graph` for a private mutable copy.
        """
        return self.route_cache.graph()

    def build_graph(self) -> nx.Graph:
        """Build a fresh (uncached) networkx export of the topology."""
        g = nx.Graph()
        for name, node in self.nodes.items():
            g.add_node(name, is_switch=isinstance(node, ProgrammableSwitch))
        for pair in self.duplex_pairs():
            link = self.links[pair]
            g.add_edge(*pair, capacity=link.capacity_bps,
                       delay=link.delay_s, weight=link.delay_s)
        return g

    def __repr__(self) -> str:
        return (f"Topology({self.name!r}, {len(self.switch_names)} switches, "
                f"{len(self.host_names)} hosts, "
                f"{len(self.duplex_pairs())} links)")


# ----------------------------------------------------------------------
# Canned topologies
# ----------------------------------------------------------------------
@dataclass
class FigureTwoNetwork:
    """The paper's Figure 2 case-study network plus its metadata.

    Layout (all switch-switch links)::

            +------ s1 ------+           short path A (critical link s1-sR)
            |                |
      sL ---+------ s2 ------+--- sR     short path B (critical link s2-sR)
            |                |
            +-- s3 ---- s4 --+           detour path C (longer)
            |                |
            +-- s5 ---- s6 --+           detour path D (longer)

    Clients and bots attach at ``sL``; the victim and the decoy public
    servers the Crossfire attacker targets attach at ``sR``.  The two
    *critical links* are ``s1->sR`` and ``s2->sR``: in the default TE
    configuration all victim-bound traffic crosses one of them.
    """

    topo: Topology
    left_edge: str = "sL"
    right_edge: str = "sR"
    critical_links: List[Tuple[str, str]] = field(default_factory=list)
    detour_paths: List[List[str]] = field(default_factory=list)
    victim: str = "victim"
    decoy_servers: List[str] = field(default_factory=list)
    client_hosts: List[str] = field(default_factory=list)
    bot_hosts: List[str] = field(default_factory=list)
    #: Bots attached at the victim-side edge (Coremelt pairs).
    right_bot_hosts: List[str] = field(default_factory=list)


def figure2_topology(sim: Simulator, n_clients: int = 4, n_bots: int = 6,
                     n_bots_right: int = 0,
                     critical_capacity: float = 10 * GBPS,
                     detour_capacity: float = 10 * GBPS,
                     edge_capacity: float = 40 * GBPS,
                     base_delay: float = 1 * MS) -> FigureTwoNetwork:
    """Build the Figure 2 network used throughout the case study."""
    topo = Topology(sim, name="figure2")
    for name in ("sL", "s1", "s2", "s3", "s4", "s5", "s6", "sR"):
        topo.add_switch(name)

    # Short (critical) paths: sL-s1-sR and sL-s2-sR.
    topo.add_duplex_link("sL", "s1", edge_capacity, base_delay)
    topo.add_duplex_link("s1", "sR", critical_capacity, base_delay)
    topo.add_duplex_link("sL", "s2", edge_capacity, base_delay)
    topo.add_duplex_link("s2", "sR", critical_capacity, base_delay)
    # Detour paths: one hop longer, higher propagation delay.
    topo.add_duplex_link("sL", "s3", detour_capacity, 2 * base_delay)
    topo.add_duplex_link("s3", "s4", detour_capacity, 2 * base_delay)
    topo.add_duplex_link("s4", "sR", detour_capacity, 2 * base_delay)
    topo.add_duplex_link("sL", "s5", detour_capacity, 2 * base_delay)
    topo.add_duplex_link("s5", "s6", detour_capacity, 2 * base_delay)
    topo.add_duplex_link("s6", "sR", detour_capacity, 2 * base_delay)

    net = FigureTwoNetwork(topo=topo)
    net.critical_links = [("s1", "sR"), ("s2", "sR")]
    net.detour_paths = [["sL", "s3", "s4", "sR"], ["sL", "s5", "s6", "sR"]]

    topo.attach_host("victim", "sR", capacity_bps=edge_capacity)
    for i in range(2):
        name = f"decoy{i}"
        topo.attach_host(name, "sR", capacity_bps=edge_capacity)
        net.decoy_servers.append(name)
    for i in range(n_clients):
        name = f"client{i}"
        topo.attach_host(name, "sL", capacity_bps=edge_capacity)
        net.client_hosts.append(name)
    for i in range(n_bots):
        name = f"bot{i}"
        topo.attach_host(name, "sL", capacity_bps=edge_capacity)
        net.bot_hosts.append(name)
    # Optional victim-side bots: a Coremelt-style attacker [74] needs
    # bot pairs whose mutual traffic crosses the core.
    for i in range(n_bots_right):
        name = f"rbot{i}"
        topo.attach_host(name, "sR", capacity_bps=edge_capacity)
        net.right_bot_hosts.append(name)
    return net


def fat_tree(sim: Simulator, k: int = 4,
             link_capacity: float = 10 * GBPS,
             link_delay: float = 50 * US,
             hosts_per_edge: int = 1) -> Topology:
    """A k-ary fat-tree (k even): k pods, (k/2)^2 core switches."""
    if k % 2 != 0 or k < 2:
        raise ValueError(f"fat-tree k must be even and >= 2, got {k}")
    topo = Topology(sim, name=f"fattree{k}")
    half = k // 2
    cores = [topo.add_switch(f"core{i}").name for i in range(half * half)]
    for pod in range(k):
        aggs = [topo.add_switch(f"agg{pod}_{i}").name for i in range(half)]
        edges = [topo.add_switch(f"edge{pod}_{i}").name for i in range(half)]
        for agg in aggs:
            for edge in edges:
                topo.add_duplex_link(agg, edge, link_capacity, link_delay)
        for i, agg in enumerate(aggs):
            for j in range(half):
                core = cores[i * half + j]
                topo.add_duplex_link(agg, core, link_capacity, link_delay)
        for i, edge in enumerate(edges):
            for h in range(hosts_per_edge):
                topo.attach_host(f"h{pod}_{i}_{h}", edge,
                                 capacity_bps=link_capacity,
                                 delay_s=link_delay)
    return topo


#: (city pairs, one entry per physical link) of the Abilene research WAN.
_ABILENE_EDGES = [
    ("seattle", "sunnyvale"), ("seattle", "denver"),
    ("sunnyvale", "losangeles"), ("sunnyvale", "denver"),
    ("losangeles", "houston"), ("denver", "kansascity"),
    ("kansascity", "houston"), ("kansascity", "indianapolis"),
    ("houston", "atlanta"), ("atlanta", "indianapolis"),
    ("atlanta", "washington"), ("indianapolis", "chicago"),
    ("chicago", "newyork"), ("newyork", "washington"),
]


def abilene_like(sim: Simulator, link_capacity: float = 10 * GBPS,
                 link_delay: float = 5 * MS,
                 hosts_per_city: int = 1) -> Topology:
    """An Abilene-shaped WAN with one host per city by default."""
    topo = Topology(sim, name="abilene")
    cities = sorted({c for edge in _ABILENE_EDGES for c in edge})
    for city in cities:
        topo.add_switch(f"sw_{city}")
    for a, b in _ABILENE_EDGES:
        topo.add_duplex_link(f"sw_{a}", f"sw_{b}", link_capacity, link_delay)
    for city in cities:
        for h in range(hosts_per_city):
            topo.attach_host(f"{city}{h}", f"sw_{city}",
                             capacity_bps=link_capacity)
    return topo


def random_topology(sim: Simulator, n_switches: int, n_hosts: int,
                    extra_edges: int = 0,
                    link_capacity: float = 10 * GBPS,
                    link_delay: float = 1 * MS,
                    seed: Optional[int] = None) -> Topology:
    """A connected random topology: a random spanning tree plus extras."""
    if n_switches < 1:
        raise ValueError("need at least one switch")
    # Topology sampling gets its own RNG stream, never ``sim.rng``: the
    # simulator's RNG drives event-order tie-breaking, so drawing the
    # topology from it would make "add one more host" perturb the event
    # schedule of an otherwise identical run.  When no explicit seed is
    # given, derive one from the simulator's seed (string seeding is
    # hash-randomization-proof) so runs stay reproducible.
    rng = random.Random(f"random_topology:{sim.seed}"
                        if seed is None else seed)
    topo = Topology(sim, name="random")
    names = [topo.add_switch(f"sw{i}").name for i in range(n_switches)]
    for i in range(1, n_switches):
        parent = names[rng.randrange(i)]
        topo.add_duplex_link(names[i], parent, link_capacity, link_delay)
    added = 0
    attempts = 0
    while added < extra_edges and attempts < 50 * (extra_edges + 1):
        attempts += 1
        a, b = rng.sample(names, 2)
        if (a, b) not in topo.links:
            topo.add_duplex_link(a, b, link_capacity, link_delay)
            added += 1
    for i in range(n_hosts):
        topo.attach_host(f"h{i}", names[rng.randrange(n_switches)],
                         capacity_bps=link_capacity)
    return topo
