"""Flow descriptors for the fluid traffic model.

A :class:`Flow` is an aggregate of one or more transport connections
between two hosts.  Elastic flows model TCP: they take whatever max-min
fair share the network gives them (up to their demand) and back off under
congestion.  Inelastic flows model UDP: they keep sending at their demand
and suffer loss on overloaded links.

The ``weight`` field lets one :class:`Flow` stand in for many parallel
connections — exactly how a Crossfire bot behaves: it opens many
*individually legitimate, low-rate* TCP connections whose combined fair
share crowds out normal traffic on the target link.  Weighted max-min
allocation (see :mod:`repro.netsim.fluid`) reproduces that crowding
without simulating each connection.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .packet import FlowKey, Protocol
from .routing import Path

_flow_ids = itertools.count(1)

#: Fields whose mutation changes the outcome of a fluid allocation pass.
#: Assigning any of them notifies the owning :class:`FlowSet` so the
#: fluid model's steady-state fast path knows to re-run the allocator
#: (see DESIGN.md, "Incremental fluid allocator").
_ALLOC_FIELDS = frozenset({
    "demand_bps", "weight", "elastic", "police_rate_bps", "path",
    "start_time", "end_time", "pinned_rate_bps",
})


@dataclass
class Flow:
    """An aggregate traffic flow between two hosts."""

    key: FlowKey
    demand_bps: float
    path: Optional[Path] = None
    #: Number of underlying connections; max-min shares are weighted by it.
    weight: float = 1.0
    #: Elastic flows (TCP) respect their allocated share; inelastic flows
    #: (UDP) transmit at full demand and take losses.
    elastic: bool = True
    start_time: float = 0.0
    end_time: Optional[float] = None
    #: Ground truth used for evaluation only — defenses never read it.
    malicious: bool = False
    #: Set by detectors; read by mitigation boosters.
    suspicious: bool = False
    #: Detector confidence in [0, 1] that the flow is attack traffic.
    suspicion_score: float = 0.0
    #: Rate cap imposed by a packet-dropping/rate-limiting booster;
    #: ``None`` means unpoliced.
    police_rate_bps: Optional[float] = None
    #: Boundary-condition cap imposed by the sharded coordinator: the
    #: rate this flow was granted elsewhere (its other regions, or the
    #: global plan).  ``None`` means unpinned.  Like policing it caps
    #: :attr:`effective_demand_bps`, so both allocators honor it without
    #: special cases (see DESIGN.md, "Sharded simulation").
    pinned_rate_bps: Optional[float] = None
    flow_id: int = field(default_factory=lambda: next(_flow_ids))
    # --- filled in by the fluid allocator ---
    rate_bps: float = 0.0       # smoothed sending rate
    goodput_bps: float = 0.0    # rate surviving congestion loss
    bytes_delivered: float = 0.0
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.demand_bps < 0:
            raise ValueError(f"demand must be >= 0, got {self.demand_bps}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")

    def __setattr__(self, name: str, value) -> None:
        if name not in _ALLOC_FIELDS:
            object.__setattr__(self, name, value)
            return
        unchanged = name in self.__dict__ and self.__dict__[name] == value
        object.__setattr__(self, name, value)
        if unchanged:
            return
        if name == "path":
            self.__dict__["_cached_links"] = None
        owner = self.__dict__.get("_owner")
        if owner is not None:
            owner._mark_dirty()

    def path_links(self) -> Optional[tuple]:
        """The flow's directed link keys, cached until the next reroute.

        Returns ``None`` for pathless flows.  The cache is invalidated by
        any assignment to ``path`` (including :meth:`set_path`), so
        rerouting boosters need no extra bookkeeping.
        """
        links = self.__dict__.get("_cached_links")
        if links is None:
            if self.path is None:
                return None
            links = self.path.link_keys
            self.__dict__["_cached_links"] = links
        return links

    @property
    def effective_demand_bps(self) -> float:
        """Demand after policing and pinning — what may be granted."""
        demand = self.demand_bps
        if self.police_rate_bps is not None:
            demand = min(demand, self.police_rate_bps)
        if self.pinned_rate_bps is not None:
            demand = min(demand, self.pinned_rate_bps)
        return demand

    @property
    def src(self) -> str:
        return self.key.src

    @property
    def dst(self) -> str:
        return self.key.dst

    def active(self, now: float) -> bool:
        if now < self.start_time:
            return False
        return self.end_time is None or now < self.end_time

    def set_path(self, path: Optional[Path]) -> None:
        """Reroute the flow; the next fluid update charges the new path."""
        if path is not None:
            if path.src != self.src or path.dst != self.dst:
                raise ValueError(
                    f"path {path} does not connect {self.src}->{self.dst}")
        self.path = path

    def __repr__(self) -> str:
        tag = "mal" if self.malicious else "leg"
        return (f"Flow(#{self.flow_id} {self.key} {tag} "
                f"demand={self.demand_bps / 1e6:.1f}Mbps w={self.weight:g})")


class FlowSet:
    """The collection of flows a simulation runs; supports tagging queries.

    The set maintains a monotonically increasing :attr:`version` bumped by
    membership changes and by allocation-relevant mutations of member
    flows (reroutes, demand changes, policing).  The fluid model compares
    versions across epochs to skip reallocation in steady state.
    """

    def __init__(self) -> None:
        self._flows: Dict[int, Flow] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Bumped whenever membership or an allocation input changes."""
        return self._version

    def _mark_dirty(self) -> None:
        self._version += 1

    def add(self, flow: Flow) -> Flow:
        if flow.flow_id in self._flows:
            raise ValueError(f"flow #{flow.flow_id} already registered")
        self._flows[flow.flow_id] = flow
        flow.__dict__["_owner"] = self
        self._version += 1
        return flow

    def add_all(self, flows: Iterable[Flow]) -> List[Flow]:
        return [self.add(f) for f in flows]

    def remove(self, flow: Flow) -> None:
        removed = self._flows.pop(flow.flow_id, None)
        if removed is not None:
            removed.__dict__.pop("_owner", None)
            self._version += 1

    def __iter__(self):
        return iter(self._flows.values())

    def __len__(self) -> int:
        return len(self._flows)

    def active(self, now: float) -> List[Flow]:
        return [f for f in self._flows.values() if f.active(now)]

    def normal(self) -> List[Flow]:
        return [f for f in self._flows.values() if not f.malicious]

    def malicious(self) -> List[Flow]:
        return [f for f in self._flows.values() if f.malicious]

    def to_destination(self, dst: str) -> List[Flow]:
        return [f for f in self._flows.values() if f.dst == dst]

    def crossing_link(self, a: str, b: str) -> List[Flow]:
        return [f for f in self._flows.values()
                if f.path is not None and (a, b) in f.path_links()]


def make_flow(src: str, dst: str, demand_bps: float, *,
              proto: Protocol = Protocol.TCP, sport: int = 0, dport: int = 80,
              weight: float = 1.0, elastic: bool = True,
              malicious: bool = False, start_time: float = 0.0,
              end_time: Optional[float] = None,
              path: Optional[Path] = None) -> Flow:
    """Convenience constructor assembling the :class:`FlowKey`."""
    key = FlowKey(src, dst, proto, sport, dport)
    return Flow(key=key, demand_bps=demand_bps, path=path, weight=weight,
                elastic=elastic, start_time=start_time, end_time=end_time,
                malicious=malicious)
