"""Discrete-event simulation engine.

The engine is the substrate everything else in :mod:`repro.netsim` runs on.
It keeps a priority queue of timestamped callbacks and executes them in
order.  Determinism matters for reproducing the paper's experiments, so ties
on the timestamp are broken by insertion order and all randomness flows from
a single seeded :class:`random.Random` owned by the simulator.

The engine intentionally mirrors the small core of ns3 that the paper's
"customized ns3 with bmv2 support" evaluation relies on: a virtual clock,
one-shot events, periodic processes, and cancellation.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..telemetry import metrics

# Cached process-wide metric objects (see DESIGN.md "Telemetry"): the
# execution loop touches these once per event, so the per-event overhead
# is a couple of attribute adds — no registry lookups on the hot path.
_MET = metrics()
_C_SCHEDULED = _MET.counter(
    "sim_events_scheduled_total", "events pushed onto the simulator queue")
_C_EXECUTED = _MET.counter(
    "sim_events_executed_total", "events whose callback actually ran")
_C_CANCELLED = _MET.counter(
    "sim_events_cancelled_total",
    "cancelled events discarded when they reached the head of the queue")
_G_QUEUE_DEPTH = _MET.gauge(
    "sim_queue_depth", "pending entries in the event queue (incl. "
    "cancelled ones not yet discarded)")


class SimulationError(RuntimeError):
    """Raised when the simulator is used incorrectly (e.g. time travel)."""


@dataclass(order=True)
class _QueuedEvent:
    """Internal heap entry; ordering is (time, seq) for determinism."""

    time: float
    seq: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("fn", "args", "kwargs", "cancelled", "time")

    def __init__(self, time: float, fn: Callable[..., Any],
                 args: tuple, kwargs: dict):
        self.time = time
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing; safe to call more than once."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"EventHandle(t={self.time:.6f}, fn={name}, cancelled={self.cancelled})"


class PeriodicProcess:
    """A recurring event created by :meth:`Simulator.every`.

    The process reschedules itself after each firing until stopped.  The
    interval can be changed on the fly, which takes effect from the next
    rescheduling onward (used e.g. to adapt probe frequencies).
    """

    def __init__(self, sim: "Simulator", interval: float,
                 fn: Callable[..., Any], args: tuple, kwargs: dict):
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval}")
        self.sim = sim
        self.interval = interval
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.stopped = False
        self._handle: Optional[EventHandle] = None

    def start(self, delay: float = 0.0) -> "PeriodicProcess":
        self._handle = self.sim.schedule(delay, self._fire)
        return self

    def stop(self) -> None:
        self.stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        if self.stopped:
            return
        self.fn(*self.args, **self.kwargs)
        if not self.stopped:
            self._handle = self.sim.schedule(self.interval, self._fire)


class Simulator:
    """The discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned RNG.  Every stochastic component in the
        simulation draws from :attr:`rng` so a given seed reproduces a run
        exactly.
    """

    def __init__(self, seed: int = 0):
        self._now = 0.0
        self._queue: List[_QueuedEvent] = []
        self._seq = itertools.count()
        self.rng = random.Random(seed)
        self.seed = seed
        self._events_executed = 0
        self._tracers: List[Callable[[float, EventHandle], None]] = []

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (for instrumentation)."""
        return self._events_executed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any],
                 *args: Any, **kwargs: Any) -> EventHandle:
        """Schedule ``fn(*args, **kwargs)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args, **kwargs)

    def schedule_at(self, time: float, fn: Callable[..., Any],
                    *args: Any, **kwargs: Any) -> EventHandle:
        """Schedule ``fn`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}")
        handle = EventHandle(time, fn, args, kwargs)
        heapq.heappush(self._queue, _QueuedEvent(time, next(self._seq), handle))
        _C_SCHEDULED.inc()
        _G_QUEUE_DEPTH.set(len(self._queue))
        return handle

    def every(self, interval: float, fn: Callable[..., Any],
              *args: Any, start: float = 0.0, **kwargs: Any) -> PeriodicProcess:
        """Run ``fn`` every ``interval`` seconds, first firing after ``start``."""
        proc = PeriodicProcess(self, interval, fn, args, kwargs)
        return proc.start(start)

    def add_tracer(self, tracer: Callable[[float, EventHandle], None]) -> None:
        """Register a callback invoked before each event executes."""
        self._tracers.append(tracer)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` passes, or the
        event budget is exhausted.  Returns the final simulation time.
        """
        executed = 0
        while self._queue:
            entry = self._queue[0]
            if until is not None and entry.time > until:
                break
            heapq.heappop(self._queue)
            _G_QUEUE_DEPTH.set(len(self._queue))
            handle = entry.handle
            if handle.cancelled:
                _C_CANCELLED.inc()
                continue
            self._now = entry.time
            for tracer in self._tracers:
                tracer(self._now, handle)
            handle.fn(*handle.args, **handle.kwargs)
            self._events_executed += 1
            _C_EXECUTED.inc()
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        if until is not None and self._now < until:
            # Advance the clock to the horizon only when no live event
            # remains at or before it — i.e. the queue genuinely drained
            # (or only holds later events).  When `max_events` truncated
            # the run mid-horizon, jumping ahead would strand the queued
            # events in the past and make a later run() rewind the clock.
            next_live = min((e.time for e in self._queue
                             if not e.handle.cancelled), default=None)
            if next_live is None or next_live > until:
                self._now = until
        return self._now

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the earliest live (non-cancelled) queued event,
        or ``None`` when the queue is effectively empty.  The sharded
        coordinator uses it to assert the conservative-window invariant:
        after a region runs a window to ``t_end``, no live local event
        may remain at or before ``t_end``."""
        return min((e.time for e in self._queue
                    if not e.handle.cancelled), default=None)

    def run_windows(self, until: float, window: float,
                    on_window: Optional[Callable[["Simulator", float], None]]
                    = None) -> float:
        """Run to ``until`` in fixed-size window slices.

        Equivalent to ``run(until=until)`` — window boundaries execute
        no events of their own, so slicing is observationally free — but
        hands control back every ``window`` seconds of simulated time,
        which is where the sharded coordinator exchanges boundary state
        and where serve-mode drivers take checkpoints.  ``on_window`` is
        called as ``on_window(sim, boundary)`` after each slice,
        including the final one at ``until``.
        """
        if window <= 0:
            raise SimulationError(
                f"window must be positive, got {window}")
        if until < self._now:
            raise SimulationError(
                f"cannot run to t={until} before now={self._now}")
        boundary = self._now
        while boundary < until:
            boundary = min(boundary + window, until)
            self.run(until=boundary)
            if on_window is not None:
                on_window(self, boundary)
        return self._now

    def step(self) -> bool:
        """Execute exactly one pending event.  Returns False when idle."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            _G_QUEUE_DEPTH.set(len(self._queue))
            if entry.handle.cancelled:
                _C_CANCELLED.inc()
                continue
            self._now = entry.time
            for tracer in self._tracers:
                tracer(self._now, entry.handle)
            entry.handle.fn(*entry.handle.args, **entry.handle.kwargs)
            self._events_executed += 1
            _C_EXECUTED.inc()
            return True
        return False

    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return sum(1 for e in self._queue if not e.handle.cancelled)

    # ------------------------------------------------------------------
    # Checkpoint/restore
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        # Tracers are observers (debuggers, the serve driver's progress
        # hook), not simulation state: they may hold closures and file
        # handles, and a restored run re-attaches its own.  Everything
        # else — queue order, tie-break sequence, clock, RNG — is state.
        state = self.__dict__.copy()
        state["_tracers"] = []
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)

    def snapshot(self, path: Any, state: Any = None,
                 meta: Optional[Dict[str, Any]] = None) -> str:
        """Checkpoint this simulator (and optionally a caller-supplied
        ``state`` object sharing its object graph) to ``path``.

        The event queue's bound-method callbacks pull the entire
        reachable world into the checkpoint; ``state`` exists so callers
        can also keep *named* roots (their world/monitor/result handles)
        findable after :meth:`restore`.  Returns the checkpoint
        fingerprint.  Saving mutates nothing: a run that snapshots is
        byte-identical to one that does not.
        """
        from ..checkpoint import save_checkpoint
        header_meta = {"sim_time": self._now,
                       "events_executed": self._events_executed,
                       "pending_events": self.pending(),
                       "seed": self.seed}
        header_meta.update(meta or {})
        return save_checkpoint(path, {"sim": self, "state": state},
                               meta=header_meta)

    @classmethod
    def restore(cls, path: Any
                ) -> Tuple["Simulator", Any, Dict[str, Any]]:
        """Restore a :meth:`snapshot`; returns ``(sim, state, meta)``.

        Process-wide telemetry and ID sequences are restored as a side
        effect (see :func:`repro.checkpoint.load_checkpoint`), so the
        returned simulator continues the original run deterministically.
        """
        from ..checkpoint import CheckpointError, load_checkpoint
        payload, meta = load_checkpoint(path)
        sim = payload.get("sim") if isinstance(payload, dict) else None
        if not isinstance(sim, cls):
            raise CheckpointError(
                f"{path}: not an engine checkpoint (no Simulator root)")
        return sim, payload.get("state"), meta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Simulator(now={self._now:.6f}, pending={self.pending()}, "
                f"executed={self._events_executed})")


@dataclass
class SimContext:
    """A bag of shared simulation-wide services.

    Components that need the clock, the RNG, or cross-component registries
    receive a context instead of global state, which keeps runs isolated and
    parallel-test safe.
    """

    sim: Simulator
    config: Dict[str, Any] = field(default_factory=dict)

    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def rng(self) -> random.Random:
        return self.sim.rng
