"""Network simulation substrate.

A hybrid discrete-event / fluid simulator standing in for the paper's
customized ns3 + bmv2 testbed (see DESIGN.md for the substitution
rationale).  Packet-level events carry probes, traceroutes, and FastFlex
control messages; bulk data traffic is a fluid max-min allocation updated
on a fine timer.
"""

from .engine import EventHandle, PeriodicProcess, SimContext, Simulator, SimulationError
from .flows import Flow, FlowSet, make_flow
from .fluid import (AllocationResult, FluidNetwork, max_min_allocate,
                    max_min_allocate_reference)
from .links import Link, LinkStats
from .monitor import Monitor, TimeSeries
from .node import Host, Node
from .packet import (DEFAULT_TTL, FlowKey, Packet, PacketKind, Protocol,
                     TcpFlags, make_probe)
from .routecache import RouteCache, SsspTree
from .routing import (NoRouteError, Path, all_shortest_paths,
                      all_shortest_paths_reference,
                      clear_flow_route, default_path_for,
                      edge_disjoint_paths, install_fast_reroute_alternates,
                      install_fast_reroute_alternates_reference,
                      install_flow_route,
                      install_host_routes, install_host_routes_reference,
                      install_path_route,
                      install_switch_routes, install_switch_routes_reference,
                      k_shortest_paths, k_shortest_paths_reference,
                      shortest_path, shortest_path_reference)
from .sources import (BatchPacketSource, MeterWindow, PacketSource,
                      ThroughputMeter)
from .switch import (Consume, Decision, Drop, Forward, LegacySwitchError,
                     ProgrammableSwitch,
                     SwitchProgram, SwitchStats)
from .topology import (GBPS, MBPS, MS, US, FigureTwoNetwork, Topology,
                       abilene_like, fat_tree, figure2_topology,
                       random_topology)
from .traceroute import TracerouteClient, TracerouteResult
from .workloads import (DemandModulator, EnterpriseWorkload,
                        diurnal_profile, elephant_mice_split,
                        enterprise_workload, pareto_sizes)
from .traffic import (TrafficMatrix, client_server_flows, gravity_matrix,
                      poisson_flow_arrivals, uniform_matrix)

__all__ = [
    "AllocationResult", "Consume", "DEFAULT_TTL", "Decision", "Drop",
    "EventHandle", "FigureTwoNetwork", "Flow", "FlowKey", "FlowSet",
    "FluidNetwork", "Forward", "GBPS", "Host", "LegacySwitchError",
    "Link", "LinkStats", "MBPS",
    "MS", "Monitor", "NoRouteError", "Node", "Packet", "PacketKind", "Path",
    "PeriodicProcess", "ProgrammableSwitch", "Protocol", "RouteCache",
    "SimContext",
    "SimulationError", "Simulator", "SsspTree", "SwitchProgram",
    "SwitchStats",
    "TcpFlags", "TimeSeries", "Topology", "TracerouteClient",
    "TracerouteResult", "TrafficMatrix", "US", "abilene_like",
    "all_shortest_paths", "all_shortest_paths_reference",
    "clear_flow_route", "client_server_flows",
    "default_path_for", "edge_disjoint_paths", "install_flow_route",
    "fat_tree", "figure2_topology", "gravity_matrix",
    "install_fast_reroute_alternates",
    "install_fast_reroute_alternates_reference", "install_host_routes",
    "install_host_routes_reference",
    "install_path_route", "install_switch_routes",
    "install_switch_routes_reference",
    "k_shortest_paths", "k_shortest_paths_reference", "make_flow",
    "make_probe",
    "max_min_allocate", "max_min_allocate_reference",
    "poisson_flow_arrivals", "random_topology",
    "shortest_path", "shortest_path_reference", "uniform_matrix",
    "DemandModulator",
    "EnterpriseWorkload", "diurnal_profile", "elephant_mice_split",
    "enterprise_workload", "pareto_sizes", "BatchPacketSource",
    "MeterWindow", "PacketSource", "ThroughputMeter",
]
