"""Links: capacity, propagation delay, queues, and utilization accounting.

Links are *directed*; :class:`repro.netsim.topology.Topology` installs one
link object per direction.  A link serves two roles:

* **Packet level** — control traffic (probes, mode changes, traceroutes,
  state transfer) is simulated packet by packet with serialization delay,
  a bounded FIFO queue, and tail drops.
* **Fluid level** — bulk data traffic is represented as flow rates assigned
  by :mod:`repro.netsim.fluid`.  The allocator writes ``fluid_load_bps``
  each update; the link exposes a combined utilization and a loss
  probability that packet-level traffic sharing the link experiences.

This split is the substitution for the paper's ns3+bmv2 testbed (see
DESIGN.md): it preserves the *timescales* — probes cross a link in roughly
``delay + size/capacity`` seconds, congestion raises loss for
state-carrying packets — without simulating every data packet of a 120 s
experiment in pure Python.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque

from ..telemetry import metrics
from .engine import Simulator
from .packet import Packet, PacketKind

if TYPE_CHECKING:  # pragma: no cover
    from .node import Node

# Mode probes share links with attack traffic, so the link layer is the
# one place their loss is observable — the protocol layer only counts
# sends and receives (see core/mode_protocol.py).
_C_PACKETS_DROPPED = metrics().counter(
    "link_packets_dropped_total", "packet-level drops across all links",
    labelnames=("reason",))
_C_MODE_PROBES_LOST = metrics().counter(
    "mode_probes_lost_total",
    "MODE_CHANGE probes dropped in flight (queue/congestion/down)")


def _count_drop(packet: Packet, reason: str) -> None:
    _C_PACKETS_DROPPED.labels(reason).inc()
    if packet.kind == PacketKind.MODE_CHANGE:
        _C_MODE_PROBES_LOST.inc()


@dataclass
class LinkStats:
    """Counters a link maintains for monitoring and tests."""

    packets_sent: int = 0
    packets_dropped_queue: int = 0
    packets_dropped_congestion: int = 0
    packets_dropped_down: int = 0
    bytes_sent: int = 0

    @property
    def packets_dropped(self) -> int:
        return (self.packets_dropped_queue + self.packets_dropped_congestion
                + self.packets_dropped_down)


class Link:
    """A directed link between two nodes.

    Parameters
    ----------
    capacity_bps:
        Line rate in bits per second.
    delay_s:
        Propagation delay in seconds.
    queue_bytes:
        FIFO queue capacity for packet-level traffic.
    """

    def __init__(self, sim: Simulator, src: "Node", dst: "Node",
                 capacity_bps: float, delay_s: float,
                 queue_bytes: int = 512 * 1500):
        if capacity_bps <= 0:
            raise ValueError(f"link capacity must be positive, got {capacity_bps}")
        if delay_s < 0:
            raise ValueError(f"link delay must be non-negative, got {delay_s}")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.capacity_bps = capacity_bps
        self.delay_s = delay_s
        self.queue_bytes = queue_bytes
        self.stats = LinkStats()
        self.up = True
        #: Set by :meth:`detach` when the link is removed from its
        #: topology: in-flight deliveries and the serializer's
        #: self-reschedule degrade to drops/no-ops instead of firing
        #: against a node no longer in the topology.
        self.detached = False
        #: Aggregate fluid-model data rate currently routed over this link,
        #: written by the fluid allocator on every update.
        self.fluid_load_bps = 0.0
        self._queue: Deque[Packet] = deque()
        self._queued_bytes = 0
        self._busy = False
        #: Optional per-packet observers (monitors, tests).
        self.on_transmit: list = []
        #: Observers of structural changes (capacity); the owning topology
        #: registers one so cached fluid allocations are invalidated.
        self.on_change: list = []

    # ------------------------------------------------------------------
    # Identification
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return f"{self.src.name}->{self.dst.name}"

    def __repr__(self) -> str:
        return (f"Link({self.name}, {self.capacity_bps / 1e9:.2f}Gbps, "
                f"{self.delay_s * 1e3:.2f}ms, load={self.utilization:.2f})")

    # ------------------------------------------------------------------
    # Utilization / loss, combining fluid and packet traffic
    # ------------------------------------------------------------------
    @property
    def utilization(self) -> float:
        """Fraction of capacity consumed by fluid-model traffic (may be >1
        when the offered load exceeds capacity, i.e. the link is flooded)."""
        return self.fluid_load_bps / self.capacity_bps

    @property
    def congestion_loss_rate(self) -> float:
        """Probability a packet-level packet is lost to congestion.

        When the fluid offered load exceeds capacity, the excess fraction is
        dropped; packet-level traffic sharing the link sees the same loss
        rate.  This is what makes state-transfer packets unreliable on
        flooded links and motivates the FEC mechanism of Section 3.4.
        """
        if self.fluid_load_bps <= self.capacity_bps:
            return 0.0
        return 1.0 - self.capacity_bps / self.fluid_load_bps

    @property
    def queuing_delay_estimate(self) -> float:
        """Congestion-dependent queueing delay seen by packet-level traffic.

        Modeled as the time to drain a queue whose occupancy grows with
        utilization; capped at the time to drain a full queue.  Smoothly
        zero when idle, and equal to the full-queue drain time when the
        link is saturated.
        """
        rho = min(self.utilization, 1.0)
        full_drain = self.queue_bytes * 8 / self.capacity_bps
        return full_drain * rho ** 3

    # ------------------------------------------------------------------
    # Runtime mutation
    # ------------------------------------------------------------------
    def set_capacity(self, capacity_bps: float) -> None:
        """Change the line rate at runtime (e.g. a rate-limited port while
        its switch is repurposed).  Notifies ``on_change`` observers so the
        fluid model re-runs allocation; mutating ``capacity_bps`` directly
        would silently leave a stale cached allocation in place.
        """
        if capacity_bps <= 0:
            raise ValueError(
                f"link capacity must be positive, got {capacity_bps}")
        if capacity_bps == self.capacity_bps:
            return
        self.capacity_bps = capacity_bps
        for observer in self.on_change:
            observer(self)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def set_down(self) -> None:
        self.up = False

    def set_up(self) -> None:
        self.up = True

    def detach(self) -> None:
        """Take the link out of service permanently (its endpoint was
        removed via ``Topology.remove_link``/``remove_node``).

        Drops everything still queued, zeroes the published fluid load,
        and guards the already-scheduled ``_deliver``/``_transmit_next``
        events so they become drops/no-ops rather than touching the
        removed node.
        """
        self.detached = True
        self.up = False
        for packet in self._queue:
            packet.mark_dropped("link_removed")
            _count_drop(packet, "link_removed")
        self.stats.packets_dropped_down += len(self._queue)
        self._queue.clear()
        self._queued_bytes = 0
        self._busy = False
        self.fluid_load_bps = 0.0

    # ------------------------------------------------------------------
    # Packet-level transmission
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Enqueue a packet for transmission.  Returns False on drop."""
        if self.detached:
            packet.mark_dropped("link_removed")
            self.stats.packets_dropped_down += 1
            _count_drop(packet, "link_removed")
            return False
        if not self.up:
            packet.mark_dropped("link_down")
            self.stats.packets_dropped_down += 1
            _count_drop(packet, "link_down")
            return False
        loss = self.congestion_loss_rate
        if loss > 0 and self.sim.rng.random() < loss:
            packet.mark_dropped("congestion")
            self.stats.packets_dropped_congestion += 1
            _count_drop(packet, "congestion")
            return False
        if self._queued_bytes + packet.size_bytes > self.queue_bytes:
            packet.mark_dropped("queue_overflow")
            self.stats.packets_dropped_queue += 1
            _count_drop(packet, "queue_overflow")
            return False
        self._queue.append(packet)
        self._queued_bytes += packet.size_bytes
        if not self._busy:
            self._transmit_next()
        return True

    def _transmit_next(self) -> None:
        if self.detached or not self._queue:
            self._busy = False
            return
        self._busy = True
        packet = self._queue.popleft()
        self._queued_bytes -= packet.size_bytes
        serialization = packet.size_bits / self.capacity_bps
        arrival_delay = serialization + self.delay_s + self.queuing_delay_estimate
        self.stats.packets_sent += 1
        self.stats.bytes_sent += packet.size_bytes
        for observer in self.on_transmit:
            observer(self, packet)
        self.sim.schedule(arrival_delay, self._deliver, packet)
        self.sim.schedule(serialization, self._transmit_next)

    def _deliver(self, packet: Packet) -> None:
        if self.detached:
            packet.mark_dropped("link_removed")
            self.stats.packets_dropped_down += 1
            _count_drop(packet, "link_removed")
            return
        if not self.up:
            packet.mark_dropped("link_down")
            self.stats.packets_dropped_down += 1
            _count_drop(packet, "link_down")
            return
        self.dst.receive(packet, from_link=self)

    # ------------------------------------------------------------------
    # Batch transmission (see DESIGN.md "Batch data plane")
    # ------------------------------------------------------------------
    def send_batch(self, packets: list, sizes=None) -> int:
        """Enqueue one coalesced window of packets; returns how many were
        accepted.

        Admission control is per packet and in order — the same
        congestion-loss RNG draws and the same cumulative queue check as
        ``len(packets)`` sequential :meth:`send` calls, so drop decisions
        are identical.  The accepted packets then cross the link as ONE
        scheduled event: they serialize back-to-back and arrive together
        after the aggregate serialization time plus propagation — the
        window-coalescing model that removes the per-packet event cost.
        When the serializer is already busy, the window falls back into
        the regular FIFO and drains per packet.

        ``sizes``, when given, must be the parallel ``size_bytes``
        column for ``packets``; it only short-cuts the byte summation.
        """
        if self.detached:
            for packet in packets:
                packet.mark_dropped("link_removed")
                _count_drop(packet, "link_removed")
            self.stats.packets_dropped_down += len(packets)
            return 0
        if not self.up:
            for packet in packets:
                packet.mark_dropped("link_down")
                _count_drop(packet, "link_down")
            self.stats.packets_dropped_down += len(packets)
            return 0
        loss = self.congestion_loss_rate
        accepted = None
        total = -1
        if loss == 0:
            window_bytes = (sum(sizes) if sizes is not None
                            else sum(p.size_bytes for p in packets))
            if self._queued_bytes + window_bytes <= self.queue_bytes:
                # No loss process and the whole window fits: every
                # in-order per-packet admission check would pass (sizes
                # are non-negative, so every prefix fits too), so the
                # scan is skipped wholesale.
                accepted = list(packets)
                self._queued_bytes += window_bytes
                total = window_bytes
        if accepted is None:
            rng = self.sim.rng.random
            accepted = []
            for packet in packets:
                if loss > 0 and rng() < loss:
                    packet.mark_dropped("congestion")
                    self.stats.packets_dropped_congestion += 1
                    _count_drop(packet, "congestion")
                    continue
                if self._queued_bytes + packet.size_bytes > self.queue_bytes:
                    packet.mark_dropped("queue_overflow")
                    self.stats.packets_dropped_queue += 1
                    _count_drop(packet, "queue_overflow")
                    continue
                self._queued_bytes += packet.size_bytes
                accepted.append(packet)
        if not accepted:
            return 0
        if self._busy:
            # Serializer busy mid-window: drain through the normal FIFO
            # (bytes already reserved above).
            self._queue.extend(accepted)
            return len(accepted)
        self._busy = True
        if total >= 0:
            total_bytes = total
        else:
            total_bytes = 0
            for packet in accepted:
                total_bytes += packet.size_bytes
        self._queued_bytes -= total_bytes
        serialization = total_bytes * 8 / self.capacity_bps
        arrival_delay = serialization + self.delay_s + self.queuing_delay_estimate
        self.stats.packets_sent += len(accepted)
        self.stats.bytes_sent += total_bytes
        if self.on_transmit:
            for packet in accepted:
                for observer in self.on_transmit:
                    observer(self, packet)
        self.sim.schedule(arrival_delay, self._deliver_batch, accepted)
        self.sim.schedule(serialization, self._transmit_next)
        return len(accepted)

    def _deliver_batch(self, packets: list) -> None:
        if self.detached:
            for packet in packets:
                packet.mark_dropped("link_removed")
                _count_drop(packet, "link_removed")
            self.stats.packets_dropped_down += len(packets)
            return
        if not self.up:
            for packet in packets:
                packet.mark_dropped("link_down")
                _count_drop(packet, "link_down")
            self.stats.packets_dropped_down += len(packets)
            return
        self.dst.receive_batch(packets, from_link=self)
