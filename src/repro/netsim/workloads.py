"""Realistic workload generation: heavy tails and diurnal rhythms.

The default-mode story of the paper rests on a *stable traffic matrix*
that centralized TE optimizes for; real matrices are stable in shape but
heavy-tailed in composition (a few elephants, many mice) and modulated
over time (diurnal cycles).  This module provides those shapes so
examples and tests can run the defenses against credible background
traffic rather than uniform constants.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .engine import PeriodicProcess, Simulator
from .flows import Flow, make_flow


def pareto_sizes(rng: random.Random, n: int, alpha: float = 1.2,
                 min_bytes: float = 10_000.0,
                 cap_bytes: Optional[float] = 1e9) -> List[float]:
    """Heavy-tailed (Pareto) flow sizes: many mice, a few elephants.

    ``alpha`` near 1 gives the classic Internet mix; a cap keeps single
    samples from dwarfing the whole workload in small experiments.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    sizes = []
    for _ in range(n):
        size = min_bytes * (1.0 - rng.random()) ** (-1.0 / alpha)
        if cap_bytes is not None:
            size = min(size, cap_bytes)
        sizes.append(size)
    return sizes


def elephant_mice_split(sizes: Sequence[float],
                        elephant_fraction: float = 0.1) -> tuple:
    """Partition sizes into (elephants, mice) by the size quantile."""
    if not 0 < elephant_fraction < 1:
        raise ValueError("elephant_fraction must be in (0, 1)")
    ranked = sorted(sizes, reverse=True)
    cut = max(1, int(len(ranked) * elephant_fraction)) if ranked else 0
    return ranked[:cut], ranked[cut:]


def diurnal_profile(base_bps: float, amplitude: float = 0.5,
                    period_s: float = 86_400.0,
                    peak_at_s: float = 14 * 3600.0
                    ) -> Callable[[float], float]:
    """A sinusoidal day/night demand curve: ``demand(t)``.

    ``amplitude`` is the relative swing (0.5 -> demand varies between
    50 % and 150 % of base); the peak lands at ``peak_at_s`` within each
    period.
    """
    if base_bps < 0:
        raise ValueError("base demand must be >= 0")
    if not 0 <= amplitude <= 1:
        raise ValueError("amplitude must be in [0, 1]")
    if period_s <= 0:
        raise ValueError("period must be positive")

    def demand(t: float) -> float:
        phase = 2 * math.pi * (t - peak_at_s) / period_s
        return base_bps * (1.0 + amplitude * math.cos(phase))

    return demand


class DemandModulator:
    """Periodically rewrites flows' demands from per-flow profiles.

    Attach profiles (``flow -> demand(t)``) and start it; every
    ``update_interval`` it sets each flow's ``demand_bps`` from its
    profile — the fluid allocator picks the change up on its next pass.
    """

    def __init__(self, sim: Simulator, update_interval_s: float = 1.0):
        if update_interval_s <= 0:
            raise ValueError("update interval must be positive")
        self.sim = sim
        self.update_interval_s = update_interval_s
        self._profiles: Dict[int, tuple] = {}
        self._process: Optional[PeriodicProcess] = None
        self.updates_applied = 0

    def attach(self, flow: Flow,
               profile: Callable[[float], float]) -> None:
        self._profiles[flow.flow_id] = (flow, profile)

    def start(self) -> "DemandModulator":
        self._process = self.sim.every(self.update_interval_s, self._tick)
        return self

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    def _tick(self) -> None:
        now = self.sim.now
        for flow, profile in self._profiles.values():
            flow.demand_bps = max(0.0, profile(now))
            self.updates_applied += 1


@dataclass
class EnterpriseWorkload:
    """A generated workload: flows plus the modulator driving them."""

    flows: List[Flow] = field(default_factory=list)
    modulator: Optional[DemandModulator] = None

    @property
    def total_base_demand(self) -> float:
        return sum(f.demand_bps for f in self.flows)


def enterprise_workload(sim: Simulator, clients: Sequence[str],
                        servers: Sequence[str],
                        total_bps: float,
                        elephant_fraction: float = 0.1,
                        elephant_share: float = 0.6,
                        diurnal_amplitude: float = 0.0,
                        period_s: float = 600.0,
                        update_interval_s: float = 5.0
                        ) -> EnterpriseWorkload:
    """Client->server flows with an elephant/mice demand mix.

    ``elephant_share`` of the total demand concentrates on the elephant
    fraction of flows; an optional diurnal modulation (scaled down to
    ``period_s`` so experiments see full cycles) varies every demand.
    """
    if not clients or not servers:
        raise ValueError("need at least one client and one server")
    if not 0 <= elephant_share <= 1:
        raise ValueError("elephant_share must be in [0, 1]")
    rng = sim.rng
    n = len(clients)
    n_elephants = max(1, int(n * elephant_fraction))
    per_elephant = total_bps * elephant_share / n_elephants
    n_mice = max(n - n_elephants, 1)
    per_mouse = total_bps * (1.0 - elephant_share) / n_mice

    workload = EnterpriseWorkload()
    modulator = DemandModulator(sim, update_interval_s=update_interval_s)
    for index, client in enumerate(clients):
        server = servers[index % len(servers)]
        base = per_elephant if index < n_elephants else per_mouse
        flow = make_flow(client, server, base, sport=20_000 + index)
        workload.flows.append(flow)
        if diurnal_amplitude > 0:
            profile = diurnal_profile(
                base, amplitude=diurnal_amplitude, period_s=period_s,
                peak_at_s=rng.uniform(0, period_s))
            modulator.attach(flow, profile)
    if diurnal_amplitude > 0:
        workload.modulator = modulator
    return workload
