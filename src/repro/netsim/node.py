"""Nodes: the common base class and end hosts.

Switches live in :mod:`repro.netsim.switch`; this module provides the
plumbing both share (link attachment, neighbor lookup) and the
:class:`Host` endpoint that sources and sinks traffic, runs traceroutes,
and hands received packets to application callbacks.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from operator import attrgetter
from typing import Callable, Dict, List, Optional

from .engine import Simulator
from .links import Link
from .packet import Packet, PacketKind

_GET_KIND = attrgetter("kind")


class Node:
    """A network element with named links to neighbors."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        #: Outgoing links keyed by neighbor node name.
        self.links: Dict[str, Link] = {}
        #: Engine-scheduled work this node owns (periodic agents, traffic
        #: sources, pending one-shot handles) — cancelled by
        #: :meth:`retire` when the node is removed from its topology.
        self.owned_work: List = []
        #: True once the node has been removed from its topology; sources
        #: and callbacks that race the removal check it and degrade to
        #: drops instead of firing against a dead node.
        self.retired = False

    # ------------------------------------------------------------------
    def own(self, work):
        """Register node-owned scheduled work for removal-time cleanup.

        ``work`` is anything exposing ``stop()`` or ``cancel()`` — a
        :class:`~repro.netsim.engine.PeriodicProcess`, an
        :class:`~repro.netsim.engine.EventHandle`, a traffic source.
        Returns ``work`` so call sites can register inline.
        """
        self.owned_work.append(work)
        return work

    def retire(self) -> None:
        """Cancel all owned scheduled work; called on topology removal.

        Without this, ``Topology.remove_switch`` left monitor samples,
        periodic agents, and queued link events live in the event queue,
        firing against a node no longer in ``Topology.nodes``.
        """
        self.retired = True
        for work in self.owned_work:
            stop = getattr(work, "stop", None)
            if stop is None:
                stop = getattr(work, "cancel", None)
            if stop is not None:
                stop()
        self.owned_work.clear()

    # ------------------------------------------------------------------
    def attach_link(self, link: Link) -> None:
        if link.src is not self:
            raise ValueError(
                f"link {link.name} does not originate at {self.name}")
        self.links[link.dst.name] = link

    @property
    def neighbors(self) -> List[str]:
        return list(self.links)

    def link_to(self, neighbor: str) -> Link:
        try:
            return self.links[neighbor]
        except KeyError:
            raise KeyError(
                f"{self.name} has no link to {neighbor}; "
                f"neighbors are {sorted(self.links)}") from None

    def send_via(self, neighbor: str, packet: Packet) -> bool:
        """Transmit a packet over the link to ``neighbor``."""
        return self.link_to(neighbor).send(packet)

    def receive(self, packet: Packet, from_link: Optional[Link] = None) -> None:
        raise NotImplementedError

    def receive_batch(self, packets: List[Packet],
                      from_link: Optional[Link] = None) -> None:
        """Deliver a coalesced window of packets.

        The default unrolls to per-packet :meth:`receive`;
        :class:`~repro.netsim.switch.ProgrammableSwitch` overrides it
        with the vectorized pipeline.
        """
        for packet in packets:
            self.receive(packet, from_link=from_link)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class Host(Node):
    """An end host: traffic endpoint and traceroute client.

    Hosts do not forward transit traffic; everything they originate goes to
    their default gateway switch.  Received packets are counted per kind
    and dispatched to registered callbacks (the traceroute client in
    :mod:`repro.netsim.traceroute` registers one for ICMP).
    """

    def __init__(self, sim: Simulator, name: str,
                 gateway: Optional[str] = None):
        super().__init__(sim, name)
        self.gateway = gateway
        self.received_by_kind: Dict[PacketKind, int] = defaultdict(int)
        self.received_packets: List[Packet] = []
        #: Cap on retained packets so long runs do not grow unboundedly;
        #: counters keep counting past the cap.
        self.retain_limit = 10_000
        self._callbacks: List[Callable[[Packet], None]] = []

    # ------------------------------------------------------------------
    def on_packet(self, callback: Callable[[Packet], None]) -> None:
        """Register a callback invoked for every packet addressed to us."""
        self._callbacks.append(callback)

    def originate(self, packet: Packet) -> bool:
        """Send a locally generated packet toward its destination."""
        packet.created_at = self.sim.now
        packet.path_taken.append(self.name)
        if packet.dst == self.name:
            self.receive(packet)
            return True
        if self.gateway is None:
            raise RuntimeError(f"host {self.name} has no gateway configured")
        if self.retired or self.gateway not in self.links:
            # The uplink (or this host) was removed from the topology
            # mid-run; a source may still fire before its owner cancels
            # it, so degrade to a drop instead of crashing the event loop.
            packet.mark_dropped("no_gateway")
            return False
        return self.send_via(self.gateway, packet)

    def originate_batch(self, packets: List[Packet]) -> int:
        """Send one window of locally generated packets as a single batch
        event toward the gateway; returns how many were accepted (packets
        addressed to this host short-circuit to :meth:`receive` and always
        count as accepted)."""
        now = self.sim.now
        name = self.name
        transit: List[Packet] = []
        local = 0
        for packet in packets:
            packet.created_at = now
            packet.path_taken.append(name)
            if packet.dst == name:
                self.receive(packet)
                local += 1
            else:
                transit.append(packet)
        if not transit:
            return local
        if self.gateway is None:
            raise RuntimeError(f"host {self.name} has no gateway configured")
        if self.retired or self.gateway not in self.links:
            for packet in transit:
                packet.mark_dropped("no_gateway")
            return local
        return local + self.link_to(self.gateway).send_batch(transit)

    def receive(self, packet: Packet, from_link: Optional[Link] = None) -> None:
        if packet.dst != self.name:
            # Hosts are not routers; transit traffic is silently dropped.
            packet.mark_dropped("host_not_destination")
            return
        packet.path_taken.append(self.name)
        self.received_by_kind[packet.kind] += 1
        if len(self.received_packets) < self.retain_limit:
            self.received_packets.append(packet)
        if packet.kind == PacketKind.TRACEROUTE:
            self._reply_traceroute(packet)
        for callback in self._callbacks:
            callback(packet)

    def receive_batch(self, packets: List[Packet],
                      from_link: Optional[Link] = None) -> None:
        """Vectorized sink: same observable effects as per-packet
        :meth:`receive`, with the counting and retention done in bulk.
        Falls back to per-packet order for traceroute replies and
        callbacks, which may observe interleaved state."""
        name = self.name
        if {p.dst for p in packets} == {name}:
            # Whole window addressed to us (the common sink case): skip
            # the per-packet destination branch.
            for packet in packets:
                packet.path_taken.append(name)
            mine: List[Packet] = (packets if isinstance(packets, list)
                                  else list(packets))
        else:
            mine = []
            append = mine.append
            for packet in packets:
                if packet.dst != name:
                    packet.mark_dropped("host_not_destination")
                else:
                    packet.path_taken.append(name)
                    append(packet)
        if not mine:
            return
        kind_counts = Counter(map(_GET_KIND, mine))
        received = self.received_by_kind
        for kind, count in kind_counts.items():
            received[kind] += count
        room = self.retain_limit - len(self.received_packets)
        if room > 0:
            self.received_packets.extend(mine[:room])
        if self._callbacks or PacketKind.TRACEROUTE in kind_counts:
            for packet in mine:
                if packet.kind == PacketKind.TRACEROUTE:
                    self._reply_traceroute(packet)
                for callback in self._callbacks:
                    callback(packet)

    def _reply_traceroute(self, probe: Packet) -> None:
        """Answer a traceroute probe that reached us (like a real server's
        ICMP port-unreachable): tells the tracer the destination was hit."""
        reply = Packet(
            src=self.name, dst=probe.src, size_bytes=64,
            kind=PacketKind.ICMP_TTL_EXCEEDED,
            headers={
                "reporter": self.name,
                "destination_reached": True,
                "probe_id": probe.headers.get("probe_id"),
                "probe_ttl": probe.headers.get("probe_ttl"),
            },
        )
        self.originate(reply)

    def received_count(self, kind: PacketKind = PacketKind.DATA) -> int:
        return self.received_by_kind.get(kind, 0)
