"""Nodes: the common base class and end hosts.

Switches live in :mod:`repro.netsim.switch`; this module provides the
plumbing both share (link attachment, neighbor lookup) and the
:class:`Host` endpoint that sources and sinks traffic, runs traceroutes,
and hands received packets to application callbacks.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional

from .engine import Simulator
from .links import Link
from .packet import Packet, PacketKind


class Node:
    """A network element with named links to neighbors."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        #: Outgoing links keyed by neighbor node name.
        self.links: Dict[str, Link] = {}

    # ------------------------------------------------------------------
    def attach_link(self, link: Link) -> None:
        if link.src is not self:
            raise ValueError(
                f"link {link.name} does not originate at {self.name}")
        self.links[link.dst.name] = link

    @property
    def neighbors(self) -> List[str]:
        return list(self.links)

    def link_to(self, neighbor: str) -> Link:
        try:
            return self.links[neighbor]
        except KeyError:
            raise KeyError(
                f"{self.name} has no link to {neighbor}; "
                f"neighbors are {sorted(self.links)}") from None

    def send_via(self, neighbor: str, packet: Packet) -> bool:
        """Transmit a packet over the link to ``neighbor``."""
        return self.link_to(neighbor).send(packet)

    def receive(self, packet: Packet, from_link: Optional[Link] = None) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class Host(Node):
    """An end host: traffic endpoint and traceroute client.

    Hosts do not forward transit traffic; everything they originate goes to
    their default gateway switch.  Received packets are counted per kind
    and dispatched to registered callbacks (the traceroute client in
    :mod:`repro.netsim.traceroute` registers one for ICMP).
    """

    def __init__(self, sim: Simulator, name: str,
                 gateway: Optional[str] = None):
        super().__init__(sim, name)
        self.gateway = gateway
        self.received_by_kind: Dict[PacketKind, int] = defaultdict(int)
        self.received_packets: List[Packet] = []
        #: Cap on retained packets so long runs do not grow unboundedly;
        #: counters keep counting past the cap.
        self.retain_limit = 10_000
        self._callbacks: List[Callable[[Packet], None]] = []

    # ------------------------------------------------------------------
    def on_packet(self, callback: Callable[[Packet], None]) -> None:
        """Register a callback invoked for every packet addressed to us."""
        self._callbacks.append(callback)

    def originate(self, packet: Packet) -> bool:
        """Send a locally generated packet toward its destination."""
        packet.created_at = self.sim.now
        packet.path_taken.append(self.name)
        if packet.dst == self.name:
            self.receive(packet)
            return True
        if self.gateway is None:
            raise RuntimeError(f"host {self.name} has no gateway configured")
        return self.send_via(self.gateway, packet)

    def receive(self, packet: Packet, from_link: Optional[Link] = None) -> None:
        if packet.dst != self.name:
            # Hosts are not routers; transit traffic is silently dropped.
            packet.mark_dropped("host_not_destination")
            return
        packet.path_taken.append(self.name)
        self.received_by_kind[packet.kind] += 1
        if len(self.received_packets) < self.retain_limit:
            self.received_packets.append(packet)
        if packet.kind == PacketKind.TRACEROUTE:
            self._reply_traceroute(packet)
        for callback in self._callbacks:
            callback(packet)

    def _reply_traceroute(self, probe: Packet) -> None:
        """Answer a traceroute probe that reached us (like a real server's
        ICMP port-unreachable): tells the tracer the destination was hit."""
        reply = Packet(
            src=self.name, dst=probe.src, size_bytes=64,
            kind=PacketKind.ICMP_TTL_EXCEEDED,
            headers={
                "reporter": self.name,
                "destination_reached": True,
                "probe_id": probe.headers.get("probe_id"),
                "probe_ttl": probe.headers.get("probe_ttl"),
            },
        )
        self.originate(reply)

    def received_count(self, kind: PacketKind = PacketKind.DATA) -> int:
        return self.received_by_kind.get(kind, 0)
