"""Versioned routing-computation cache and native SSSP kernels.

Every route computation used to rebuild a fresh ``nx.Graph`` from the
:class:`Topology` and run a networkx Dijkstra/Yen per query with zero
reuse across calls.  This module replaces that hot path with three
cache layers, all keyed on the existing ``Topology.version`` counter
(bumped by every structural mutation — see DESIGN.md "Routing cache"):

* **graph** — the networkx export (kept for the ``*_reference``
  implementations and max-flow based helpers), memoized per version.
* **sssp** — one native heap-based Dijkstra tree per root node
  (:class:`SsspTree`), holding distances, strict-improvement parents
  (single-path reconstruction) and the full equal-cost predecessor
  lists (ECMP table installation).  A tree rooted at a host serves
  *every* switch's next hops toward that host, every pairwise
  ``shortest_path`` query from that root, and the spur-path fast path
  of Yen's algorithm.
* **yen** — per ``(src, dst, k)`` candidate path sets from Yen's
  k-shortest-paths, so a periodic TE pass only recomputes commodities
  whose candidates actually changed.

Invalidation is *diff-based*: on a version change the cache snapshots
the (pair -> delay) edge map and compares it with the previous one.

* capacity-only changes (``Link.set_capacity``) leave delays untouched,
  so SSSP trees and candidate sets survive — only the networkx export
  (which carries capacity attributes) is rebuilt on demand;
* link/switch *removals* flush the SSSP trees and drop exactly the
  candidate sets whose paths cross a removed link (a removal cannot
  improve any surviving candidate, so untouched sets remain the true
  top-k);
* link *additions* or delay changes flush everything (a new link can
  shorten any pair's path).

The native Dijkstra replicates networkx's ``_dijkstra_multisource``
exactly — heap entries ``(dist, insertion_counter, node)``, neighbors
relaxed in sorted-name order (the insertion order of the exported
graph), parents updated only on strict improvement — so single-path
results are *identical* to the networkx reference, including tie-break
arithmetic.  Yen's candidate ordering follows the same
(cost, generation-counter) rule as ``nx.shortest_simple_paths``; the
documented divergence is that equal-cost spur paths are chosen by this
module's plain/A* Dijkstra rather than networkx's bidirectional search
(see ``tests/netsim/test_routing_equivalence.py``).
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import (TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set,
                    Tuple)

from ..telemetry import metrics

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    import networkx as nx

    from .topology import Topology

NodePath = Tuple[str, ...]
LinkKey = Tuple[str, str]
Pair = Tuple[str, str]

_MET = metrics()
_C_HITS = _MET.counter(
    "routing_cache_hits_total",
    "routing cache hits, by layer (graph/sssp/yen)",
    labelnames=("layer",))
_C_MISSES = _MET.counter(
    "routing_cache_misses_total",
    "routing cache misses, by layer (graph/sssp/yen)",
    labelnames=("layer",))
_C_SSSP = _MET.counter(
    "routing_sssp_recomputes_total",
    "native single-source shortest-path tree computations")
_C_SSSP_PARTIAL = _MET.counter(
    "routing_sssp_partial_total",
    "early-terminated multi-target shortest-path computations")
_C_REBUILDS = _MET.counter(
    "routing_graph_rebuilds_total",
    "networkx graph snapshot rebuilds")
_C_INVALIDATED = _MET.counter(
    "routing_candidates_invalidated_total",
    "cached k-shortest candidate sets dropped by link removals")

_HIT = {layer: _C_HITS.labels(layer) for layer in ("graph", "sssp", "yen")}
_MISS = {layer: _C_MISSES.labels(layer) for layer in ("graph", "sssp", "yen")}


class SsspTree:
    """One root's single-source shortest-path state.

    ``dist`` maps every reachable node to its delay-weighted distance
    from ``root``; ``parent`` is the strict-improvement predecessor used
    for single-path reconstruction (identical to the path networkx's
    Dijkstra reports); ``preds`` holds *all* equal-cost predecessors
    (what ``nx.dijkstra_predecessor_and_distance`` returns), used for
    ECMP next-hop installation and all-shortest-paths enumeration.
    """

    __slots__ = ("root", "dist", "parent", "preds")

    def __init__(self, root: str, dist: Dict[str, float],
                 parent: Dict[str, Optional[str]],
                 preds: Dict[str, List[str]]):
        self.root = root
        self.dist = dist
        self.parent = parent
        self.preds = preds

    def path_to(self, dst: str) -> Optional[NodePath]:
        """The root -> dst node path, or None if unreachable."""
        if dst not in self.dist:
            return None
        nodes = [dst]
        cur = dst
        while cur != self.root:
            cur = self.parent[cur]  # type: ignore[assignment]
            nodes.append(cur)
        nodes.reverse()
        return tuple(nodes)


def _dijkstra(adj: Dict[str, List[Tuple[str, float]]],
              root: str,
              targets: Optional[Set[str]] = None) -> SsspTree:
    """Native heap Dijkstra, bit-compatible with networkx's.

    Heap entries are ``(dist, push_counter, node)`` and neighbors are
    relaxed in the adjacency order (sorted names — the insertion order
    of the exported graph), so pop order, parent choice on ties, and
    the floating-point accumulation sequence all match
    ``nx._dijkstra_multisource``.

    With ``targets``, the search stops once every target is finalized.
    A node's ``dist``/``parent`` entries are final the moment it pops,
    so every finalized node's reconstructed path is identical to the
    full tree's — but ``preds`` lists of non-finalized nodes are
    incomplete, so partial trees must never be cached or used for ECMP
    enumeration.
    """
    dist: Dict[str, float] = {}
    seen: Dict[str, float] = {root: 0.0}
    parent: Dict[str, Optional[str]] = {root: None}
    preds: Dict[str, List[str]] = {root: []}
    remaining = None if targets is None else set(targets)
    counter = count(1)
    fringe: List[Tuple[float, int, str]] = [(0.0, 0, root)]
    push = heapq.heappush
    pop = heapq.heappop
    while fringe:
        d, _, v = pop(fringe)
        if v in dist:
            continue  # already finalized via a shorter entry
        dist[v] = d
        if remaining is not None:
            remaining.discard(v)
            if not remaining:
                break
        for u, w in adj[v]:
            vu = d + w
            if u in dist:
                if vu == dist[u]:
                    preds[u].append(v)
                continue
            su = seen.get(u)
            if su is None or vu < su:
                seen[u] = vu
                parent[u] = v
                preds[u] = [v]
                push(fringe, (vu, next(counter), u))
            elif vu == su:
                preds[u].append(v)
    return SsspTree(root, dist, parent, preds)


class RouteCache:
    """Per-topology route cache; invalidated by ``Topology.version``."""

    def __init__(self, topo: "Topology"):
        self._topo = topo
        #: Version the snapshot/adjacency layers were last synced at.
        self._synced_version: Optional[int] = None
        #: (a, b) sorted pair -> forward-direction delay, at last sync.
        self._edge_snapshot: Dict[Pair, float] = {}
        self._adj: Optional[Dict[str, List[Tuple[str, float]]]] = None
        self._weights: Dict[LinkKey, float] = {}
        self._trees: Dict[str, SsspTree] = {}
        #: (src, dst, k) -> (paths, frozenset of undirected link pairs).
        self._yen: Dict[Tuple[str, str, int],
                        Tuple[Tuple[NodePath, ...], FrozenSet[Pair]]] = {}
        self._graph: Optional["nx.Graph"] = None
        self._graph_version: Optional[int] = None

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def _sync(self) -> None:
        version = self._topo.version
        if version == self._synced_version:
            return
        topo = self._topo
        new = {pair: topo.links[pair].delay_s
               for pair in topo.duplex_pairs()}
        old = self._edge_snapshot
        if self._synced_version is None:
            # First sync: nothing cached yet, just record the snapshot.
            self._edge_snapshot = new
            self._synced_version = version
            return
        removed = [p for p in old if p not in new]
        added_or_changed = any(p not in old or old[p] != w
                               for p, w in new.items())
        if added_or_changed:
            # A new or re-weighted link can shorten any pair's path:
            # nothing survives.
            self._trees.clear()
            if self._yen:
                _C_INVALIDATED.inc(len(self._yen))
                self._yen.clear()
            self._adj = None
        elif removed:
            # A removal cannot improve a surviving candidate set, so
            # only entries whose paths cross a removed link are stale.
            self._trees.clear()
            self._adj = None
            gone = set(removed)
            stale = [key for key, (_, pairs) in self._yen.items()
                     if pairs & gone]
            for key in stale:
                del self._yen[key]
            if stale:
                _C_INVALIDATED.inc(len(stale))
        # else: capacity-only mutation — delays unchanged, keep all
        # shortest-path state (the networkx export is version-keyed
        # separately because it carries capacity attributes).
        self._edge_snapshot = new
        self._synced_version = version

    # ------------------------------------------------------------------
    # Graph layer
    # ------------------------------------------------------------------
    def graph(self) -> "nx.Graph":
        """The memoized networkx export (treat as read-only)."""
        version = self._topo.version
        if self._graph is not None and self._graph_version == version:
            _HIT["graph"].inc()
            return self._graph
        _MISS["graph"].inc()
        _C_REBUILDS.inc()
        self._graph = self._topo.build_graph()
        self._graph_version = version
        return self._graph

    # ------------------------------------------------------------------
    # SSSP layer
    # ------------------------------------------------------------------
    def _adjacency(self) -> Dict[str, List[Tuple[str, float]]]:
        if self._adj is None:
            topo = self._topo
            adj: Dict[str, List[Tuple[str, float]]] = {
                name: [] for name in topo.nodes}
            weights: Dict[LinkKey, float] = {}
            for pair in topo.duplex_pairs():  # sorted: see _dijkstra doc
                a, b = pair
                w = topo.links[pair].delay_s
                adj[a].append((b, w))
                adj[b].append((a, w))
                weights[(a, b)] = w
                weights[(b, a)] = w
            self._adj = adj
            self._weights = weights
        return self._adj

    def sssp_tree(self, root: str) -> SsspTree:
        """The cached Dijkstra tree rooted at ``root``."""
        self._sync()
        tree = self._trees.get(root)
        if tree is not None:
            _HIT["sssp"].inc()
            return tree
        _MISS["sssp"].inc()
        adj = self._adjacency()
        if root not in adj:
            raise KeyError(f"no node named {root!r} in {self._topo.name}")
        _C_SSSP.inc()
        tree = _dijkstra(adj, root)
        self._trees[root] = tree
        return tree

    def shortest_node_path(self, src: str, dst: str) -> Optional[NodePath]:
        """src -> dst node path, or None when there is no route."""
        self._sync()
        adj = self._adjacency()
        if src not in adj or dst not in adj:
            return None
        return self.sssp_tree(src).path_to(dst)

    def shortest_node_paths_to(self, src: str, dsts: List[str]
                               ) -> Dict[str, Optional[NodePath]]:
        """src -> dst node paths for many destinations in one search.

        Uses the cached full tree when one exists; otherwise runs a
        single early-terminating Dijkstra that stops once every
        destination is finalized.  Partial trees are *not* cached (their
        ``preds`` lists are incomplete — see :func:`_dijkstra`), but the
        paths they yield are bit-identical to the full tree's.
        """
        self._sync()
        adj = self._adjacency()
        if src not in adj:
            return {dst: None for dst in dsts}
        tree = self._trees.get(src)
        if tree is not None:
            _HIT["sssp"].inc()
        else:
            _C_SSSP_PARTIAL.inc()
            tree = _dijkstra(adj, src,
                             targets={dst for dst in dsts if dst in adj})
        return {dst: tree.path_to(dst) if dst in adj else None
                for dst in dsts}

    def all_shortest_node_paths(self, src: str,
                                dst: str) -> Optional[List[NodePath]]:
        """Every equal-cost shortest path, in deterministic order.

        Enumerated from the cached predecessor lists by depth-first
        expansion over *sorted* predecessors — same path set as
        ``nx.all_shortest_paths``, documented (sorted) tie-break order.
        """
        self._sync()
        adj = self._adjacency()
        if src not in adj or dst not in adj:
            return None
        tree = self.sssp_tree(src)
        if dst not in tree.dist:
            return None
        preds = tree.preds
        results: List[NodePath] = []
        stack: List[Tuple[str, Tuple[str, ...]]] = [(dst, (dst,))]
        while stack:
            node, suffix = stack.pop()
            if node == src:
                results.append(suffix)
                continue
            # Reverse-sorted pushes pop in sorted order.
            for pred in sorted(preds[node], reverse=True):
                stack.append((pred, (pred,) + suffix))
        return results

    # ------------------------------------------------------------------
    # Yen layer (k shortest loop-free paths)
    # ------------------------------------------------------------------
    def k_shortest_node_paths(self, src: str, dst: str,
                              k: int) -> Optional[Tuple[NodePath, ...]]:
        """Up to ``k`` loop-free paths in increasing delay order.

        Returns None when src/dst are unknown or disconnected.  The
        candidate set is memoized per ``(src, dst, k)`` and survives
        topology mutations that cannot change it (see module docs).
        """
        self._sync()
        key = (src, dst, k)
        entry = self._yen.get(key)
        if entry is not None:
            _HIT["yen"].inc()
            return entry[0]
        _MISS["yen"].inc()
        paths = self._yen_kernel(src, dst, k)
        if paths is None:
            return None
        pairs = frozenset(
            (a, b) if a < b else (b, a)
            for path in paths for a, b in zip(path, path[1:]))
        self._yen[key] = (paths, pairs)
        return paths

    def _yen_kernel(self, src: str, dst: str,
                    k: int) -> Optional[Tuple[NodePath, ...]]:
        adj = self._adjacency()
        if src not in adj or dst not in adj:
            return None
        first_tree = self.sssp_tree(src)
        first = first_tree.path_to(dst)
        if first is None:
            return None
        weights = self._weights
        result: List[NodePath] = []
        # Candidate buffer ordered by (cost, generation counter): ties
        # resolve to the earliest-generated candidate, the same rule as
        # networkx's PathBuffer.
        buffer: List[Tuple[float, int, NodePath]] = []
        buffered: Set[NodePath] = set()
        counter = count()
        heapq.heappush(buffer, (first_tree.dist[dst], next(counter), first))
        buffered.add(first)
        while buffer and len(result) < k:
            _, _, path = heapq.heappop(buffer)
            result.append(path)
            if len(result) >= k:
                break
            # Spur generation for the path just accepted.
            ignore_nodes: Set[str] = set()
            ignore_edges: Set[LinkKey] = set()
            root_length = 0.0
            for i in range(1, len(path)):
                root = path[:i]
                spur_node = root[-1]
                for accepted in result:
                    if accepted[:i] == root:
                        ignore_edges.add((accepted[i - 1], accepted[i]))
                spur = self._spur_path(spur_node, dst, ignore_nodes,
                                       ignore_edges)
                if spur is not None:
                    spur_cost, spur_nodes = spur
                    candidate = root[:-1] + spur_nodes
                    if candidate not in buffered:
                        heapq.heappush(
                            buffer,
                            (root_length + spur_cost, next(counter),
                             candidate))
                        buffered.add(candidate)
                ignore_nodes.add(spur_node)
                root_length += weights[(path[i - 1], path[i])]
        return tuple(result)

    def _spur_path(self, source: str, target: str,
                   ignore_nodes: Set[str], ignore_edges: Set[LinkKey]
                   ) -> Optional[Tuple[float, NodePath]]:
        """Shortest source -> target path avoiding the ignore sets.

        Fast path: when the cached unrestricted tree's path already
        avoids everything ignored it is returned as-is (its cost equals
        the unrestricted distance — a lower bound — so it is optimal in
        the restricted graph too).  Otherwise an A* search runs with
        the cached distance-to-target tree as an exact-in-the-limit,
        consistent heuristic.
        """
        if source in ignore_nodes or target in ignore_nodes:
            return None
        tree = self.sssp_tree(source)
        path = tree.path_to(target)
        if path is None:
            return None  # unreachable even without restrictions
        if (not any(n in ignore_nodes for n in path)
                and not any(e in ignore_edges
                            for e in zip(path, path[1:]))):
            return tree.dist[target], path
        return self._restricted_search(source, target, ignore_nodes,
                                       ignore_edges)

    def _restricted_search(self, source: str, target: str,
                           ignore_nodes: Set[str],
                           ignore_edges: Set[LinkKey]
                           ) -> Optional[Tuple[float, NodePath]]:
        adj = self._adjacency()
        h = self.sssp_tree(target).dist  # unrestricted dists: admissible
        if source not in h:
            return None
        dist: Dict[str, float] = {}
        seen: Dict[str, float] = {source: 0.0}
        parent: Dict[str, Optional[str]] = {source: None}
        counter = count(1)
        fringe: List[Tuple[float, int, float, str]] = [
            (h[source], 0, 0.0, source)]
        while fringe:
            _, _, g, v = heapq.heappop(fringe)
            if v in dist:
                continue
            dist[v] = g
            if v == target:
                break
            for u, w in adj[v]:
                if u in ignore_nodes or (v, u) in ignore_edges:
                    continue
                hu = h.get(u)
                if hu is None:
                    continue  # cannot reach target at all
                vu = g + w
                if u in dist:
                    continue
                su = seen.get(u)
                if su is None or vu < su:
                    seen[u] = vu
                    parent[u] = v
                    heapq.heappush(fringe, (vu + hu, next(counter), vu, u))
        if target not in dist:
            return None
        nodes = [target]
        cur = target
        while cur != source:
            cur = parent[cur]  # type: ignore[assignment]
            nodes.append(cur)
        nodes.reverse()
        return dist[target], tuple(nodes)

    # ------------------------------------------------------------------
    # Introspection (tests, DESIGN.md contract)
    # ------------------------------------------------------------------
    @property
    def cached_tree_roots(self) -> List[str]:
        return sorted(self._trees)

    @property
    def cached_candidate_keys(self) -> List[Tuple[str, str, int]]:
        return sorted(self._yen)
