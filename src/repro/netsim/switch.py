"""The programmable switch: pipeline execution, forwarding, repurposing.

A :class:`ProgrammableSwitch` executes an ordered list of installed
*switch programs* on every packet (the runtime face of the paper's packet
processing modules), then forwards per its routing table.  It also models
the operational machinery of Section 3.4: resource accounting via a
:class:`~repro.dataplane.resources.ResourceLedger`, reconfiguration
downtime with neighbor notification, and fast reroute around neighbors
that are down or reconfiguring.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass
from itertools import compress
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..dataplane.batch import PacketBatch
from ..dataplane.resources import ResourceLedger, ResourceVector, TOFINO_LIKE
from ..telemetry import metrics
from .engine import Simulator
from .links import Link
from .node import Node
from .packet import Packet, PacketKind, Protocol

# Batch data-plane telemetry (see DESIGN.md "Batch data plane").  Cached
# at module level: receive_batch is the hot path.
_MET = metrics()
_C_BATCH_EVENTS = _MET.counter(
    "dataplane_batch_events_total",
    "coalesced packet batches processed by switch pipelines")
_C_BATCH_PACKETS = _MET.counter(
    "dataplane_batch_packets_total",
    "packets that arrived at switches inside a coalesced batch")
_C_BATCH_FALLBACK = _MET.counter(
    "dataplane_batch_fallback_packets_total",
    "per-packet program invocations on the batch path (programs "
    "without a vectorized kernel)")


class Decision(enum.Enum):
    """Terminal decisions a switch program can make about a packet."""

    CONTINUE = "continue"


@dataclass
class Drop:
    """Drop the packet, recording why."""

    reason: str


@dataclass
class Consume:
    """Absorb the packet (e.g. a probe that terminates here)."""


@dataclass
class Forward:
    """Override normal routing: send out of the link to ``neighbor``."""

    neighbor: str


#: What `SwitchProgram.process` may return: ``None``/``Decision.CONTINUE``
#: to keep going, or one of the dataclasses above.
ProgramResult = Optional[object]


class LegacySwitchError(RuntimeError):
    """Raised when installing a program on a fixed-function switch."""


class SwitchProgram:
    """Base class for the runtime behaviour installed on a switch.

    Subclasses override :meth:`process`.  ``name`` must be unique per
    switch (the resource ledger keys on it); ``requirement`` is the
    program's resource vector.

    Programs with a vectorized kernel set :attr:`supports_batch` and
    implement :meth:`process_batch`; everything else transparently falls
    back to per-packet :meth:`process` when the switch receives a
    coalesced batch (counted by ``dataplane_batch_fallback_packets_total``).
    """

    #: True when :meth:`process_batch` is implemented; the batch path
    #: falls back to per-packet :meth:`process` otherwise.
    supports_batch = False

    def __init__(self, name: str,
                 requirement: ResourceVector = ResourceVector.zero()):
        self.name = name
        self.requirement = requirement
        self.switch: Optional["ProgrammableSwitch"] = None

    def on_install(self, switch: "ProgrammableSwitch") -> None:
        """Hook called when the program is installed."""
        self.switch = switch

    def on_remove(self, switch: "ProgrammableSwitch") -> None:
        """Hook called when the program is removed."""
        self.switch = None

    def process(self, switch: "ProgrammableSwitch",
                packet: Packet) -> ProgramResult:
        raise NotImplementedError

    def process_batch(self, switch: "ProgrammableSwitch",
                      batch: PacketBatch) -> None:
        """Vectorized handler, called only when :attr:`supports_batch`.

        Instead of returning a :class:`ProgramResult`, the program records
        per-packet decisions on the batch: ``batch.drop(i, reason)``,
        ``batch.consume(i)``, or ``batch.overrides[i] = neighbor``
        (Forward).  Only still-alive packets may be touched — earlier
        programs' drops must stay hidden, mirroring the sequential pipeline.
        """
        raise NotImplementedError

    def export_state(self) -> Dict[str, Any]:
        """Serializable register state, for state transfer (Section 3.4)."""
        return {}

    def import_state(self, state: Dict[str, Any]) -> None:
        """Restore register state produced by :meth:`export_state`."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


@dataclass
class SwitchStats:
    """Forwarding-plane counters."""

    packets_forwarded: int = 0
    packets_dropped_no_route: int = 0
    packets_dropped_by_program: int = 0
    packets_dropped_reconfig: int = 0
    packets_consumed: int = 0
    ttl_expired: int = 0
    fast_reroutes: int = 0


class ProgrammableSwitch(Node):
    """A P4-style switch with a multiplexed, reconfigurable pipeline.

    With ``programmable=False`` the switch models a *legacy* fixed-
    function device (§2: "legacy elements can still be part of the
    default mode"): it forwards exactly like any other switch but
    refuses program installation — FastFlex machinery must route
    through it, not run on it.
    """

    def __init__(self, sim: Simulator, name: str,
                 resources: ResourceVector = TOFINO_LIKE,
                 programmable: bool = True):
        super().__init__(sim, name)
        self.programmable = programmable
        if not programmable:
            resources = ResourceVector.zero()
        self.ledger = ResourceLedger(resources)
        self.stats = SwitchStats()
        #: Ordered installed programs, executed per packet.
        self.programs: List[SwitchProgram] = []
        self._programs_by_name: Dict[str, SwitchProgram] = {}
        #: ECMP routing table: destination host -> candidate next hops.
        self.routes: Dict[str, List[str]] = {}
        #: Per-(src, dst) pinned next hops — installed by TE deployments
        #: and by rerouting defenses; consulted before ``routes`` so
        #: packet-level traffic follows the same paths the fluid model
        #: charges for those pairs.
        self.flow_routes: Dict[tuple, str] = {}
        #: Fast-reroute alternates: unusable next hop -> fallback next hop
        #: (coarse, destination-agnostic; used when no per-destination
        #: alternate is installed).
        self.frr: Dict[str, str] = {}
        #: Loop-free alternates per (unusable next hop, destination),
        #: installed by
        #: :func:`repro.netsim.routing.install_fast_reroute_alternates`.
        self.frr_dst: Dict[tuple, str] = {}
        #: Neighbors currently reconfiguring (avoided by forwarding).
        self.avoid_neighbors: set = set()
        #: True while this switch itself is being repurposed (Tofino-style
        #: downtime); all transit packets are dropped meanwhile.
        self.reconfiguring = False
        #: Free-form per-switch state used by mode machinery and boosters.
        self.scratch: Dict[str, Any] = {}
        #: Observers called on every received packet (monitors, tests).
        self.taps: List[Callable[["ProgrammableSwitch", Packet], None]] = []

    # ------------------------------------------------------------------
    # Program management (resource-checked)
    # ------------------------------------------------------------------
    def install_program(self, program: SwitchProgram,
                        position: Optional[int] = None) -> None:
        """Install a program, reserving its resources; raises if it
        does not fit (the Section 3.1 feasibility constraint)."""
        if not self.programmable:
            raise LegacySwitchError(
                f"{self.name} is a legacy fixed-function switch; "
                f"programs cannot be installed on it")
        if program.name in self._programs_by_name:
            raise ValueError(
                f"{self.name}: program {program.name!r} already installed")
        self.ledger.allocate(program.name, program.requirement)
        if position is None:
            self.programs.append(program)
        else:
            self.programs.insert(position, program)
        self._programs_by_name[program.name] = program
        program.on_install(self)

    def remove_program(self, name: str) -> SwitchProgram:
        program = self._programs_by_name.pop(name, None)
        if program is None:
            raise KeyError(f"{self.name}: no program named {name!r}")
        self.programs.remove(program)
        self.ledger.release(name)
        program.on_remove(self)
        return program

    def get_program(self, name: str) -> SwitchProgram:
        try:
            return self._programs_by_name[name]
        except KeyError:
            raise KeyError(
                f"{self.name}: no program named {name!r}; installed: "
                f"{sorted(self._programs_by_name)}") from None

    def has_program(self, name: str) -> bool:
        return name in self._programs_by_name

    # ------------------------------------------------------------------
    # Routing table management
    # ------------------------------------------------------------------
    def set_route(self, dst: str, next_hops: Sequence[str]) -> None:
        hops = list(next_hops)
        for hop in hops:
            if hop not in self.links:
                raise ValueError(
                    f"{self.name}: next hop {hop} is not a neighbor")
        self.routes[dst] = hops

    def clear_routes(self) -> None:
        self.routes.clear()

    def _ecmp_pick(self, packet: Packet, candidates: List[str]) -> str:
        return self._ecmp_pick_pair(packet.src, packet.dst, candidates)

    def _ecmp_pick_pair(self, src: str, dst: str,
                        candidates: List[str]) -> str:
        """Deterministic hash-based ECMP selection.

        Hashes only (src, dst) — per-pair rather than per-5-tuple — so a
        host's traceroute probes follow the same path as its flows
        (Paris-traceroute-style stability, and it keeps the fluid model's
        per-pair paths consistent with packet-level forwarding).
        """
        if len(candidates) == 1:
            return candidates[0]
        digest = zlib.crc32(f"{src}|{dst}".encode())
        return candidates[digest % len(candidates)]

    def _usable(self, neighbor: str) -> bool:
        """Is the neighbor a valid forwarding target *as far as this
        switch knows*?  A silently reconfiguring neighbor still looks
        usable — that is precisely why §3.4 requires the notification
        protocol: only an explicit notice (``avoid_neighbors``) or a
        dead link diverts traffic before it blackholes."""
        link = self.links.get(neighbor)
        if link is None or not link.up:
            return False
        return neighbor not in self.avoid_neighbors

    def _resolve_next_hop(self, packet: Packet,
                          override: Optional[str] = None) -> Optional[str]:
        return self._resolve_route(packet.src, packet.dst, override)

    def _resolve_route(self, src: str, dst: str,
                       override: Optional[str] = None) -> Optional[str]:
        """Pick a usable next hop, applying fast reroute when the primary
        choice is down or reconfiguring (Section 3.4).  Pure in
        (src, dst, override) for a fixed table/link state, apart from the
        ``fast_reroutes`` counter."""
        if override is not None:
            if self._usable(override):
                return override
            rerouted = self._frr_alternate(override, dst)
            if rerouted is not None:
                return rerouted
            return None
        pinned = self.flow_routes.get((src, dst))
        if pinned is not None:
            if self._usable(pinned):
                return pinned
            alternate = self._frr_alternate(pinned, dst)
            if alternate is not None:
                return alternate
            # Fall through to the destination-based tables.
        candidates = self.routes.get(dst, [])
        if not candidates:
            return None
        primary = self._ecmp_pick_pair(src, dst, candidates)
        if self._usable(primary):
            return primary
        # Fast reroute: explicit alternate first, then any usable ECMP peer.
        alternate = self._frr_alternate(primary, dst)
        if alternate is not None:
            return alternate
        for candidate in candidates:
            if candidate != primary and self._usable(candidate):
                self.stats.fast_reroutes += 1
                return candidate
        return None

    def _frr_alternate(self, failed: str, dst: str) -> Optional[str]:
        """A usable fast-reroute alternate for the failed next hop:
        the per-destination loop-free alternate if installed, else the
        coarse per-neighbor one."""
        for candidate in (self.frr_dst.get((failed, dst)),
                          self.frr.get(failed)):
            if candidate is not None and candidate != failed \
                    and self._usable(candidate):
                self.stats.fast_reroutes += 1
                return candidate
        return None

    # ------------------------------------------------------------------
    # Packet handling
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, from_link: Optional[Link] = None) -> None:
        if self.reconfiguring:
            packet.mark_dropped("switch_reconfiguring")
            self.stats.packets_dropped_reconfig += 1
            return
        packet.path_taken.append(self.name)
        for tap in self.taps:
            tap(self, packet)

        local = packet.dst == self.name
        if not local:
            # TTL processing happens before the pipeline so traceroute
            # probes that expire here are visible to obfuscation programs
            # via the generated ICMP reply.
            packet.ttl -= 1
            if packet.ttl <= 0:
                self.stats.ttl_expired += 1
                self._reply_ttl_exceeded(packet)
                return

        override: Optional[str] = None
        for program in list(self.programs):
            result = program.process(self, packet)
            if result is None or result is Decision.CONTINUE:
                continue
            if isinstance(result, Drop):
                packet.mark_dropped(result.reason)
                self.stats.packets_dropped_by_program += 1
                return
            if isinstance(result, Consume):
                self.stats.packets_consumed += 1
                return
            if isinstance(result, Forward):
                override = result.neighbor
                continue
            raise TypeError(
                f"program {program.name!r} returned {result!r}")

        if local:
            # Control packets addressed to this switch terminate here;
            # built-in kinds get their handlers, the rest were the
            # pipeline's to consume.
            if packet.kind == PacketKind.RECONFIG_NOTICE:
                self.handle_reconfig_notice(packet)
            self.stats.packets_consumed += 1
            return

        next_hop = self._resolve_next_hop(packet, override)
        if next_hop is None:
            packet.mark_dropped("no_route")
            self.stats.packets_dropped_no_route += 1
            return
        self.stats.packets_forwarded += 1
        self.send_via(next_hop, packet)

    def receive_batch(self, packets: Sequence[Packet],
                      from_link: Optional[Link] = None) -> None:
        """Process a coalesced window of packets as one batch event.

        Semantically equivalent to calling :meth:`receive` per packet
        (same per-structure state, same drop decisions — the property
        tests in ``tests/netsim/test_batch_switch.py`` enforce it), but
        programs with vectorized kernels see the whole column at once:
        a pre-filter stage (flagged-source masks, bloom membership
        masks) runs over the batch and only the survivors fall through
        to per-packet logic.  Programs without a batch kernel run
        per-packet over the current survivors, so mixing vectorized and
        scalar programs in one pipeline is fine.
        """
        n = len(packets)
        if n == 0:
            return
        _C_BATCH_EVENTS.inc()
        _C_BATCH_PACKETS.inc(n)
        if self.reconfiguring:
            for packet in packets:
                packet.mark_dropped("switch_reconfiguring")
            self.stats.packets_dropped_reconfig += n
            return
        name = self.name
        taps = self.taps
        for packet in packets:
            packet.path_taken.append(name)
        if taps:
            for packet in packets:
                for tap in taps:
                    tap(self, packet)

        batch = PacketBatch(packets)
        # TTL stage: transit packets expire here exactly as on the
        # per-packet path; the ICMP reply machinery takes them over, so
        # they silently leave the batch (neither dropped nor consumed).
        for i in range(n):
            packet = packets[i]
            if packet.dst != name:
                ttl = packet.ttl - 1
                packet.ttl = ttl
                if ttl <= 0:
                    self.stats.ttl_expired += 1
                    batch.kill(i)
                    self._reply_ttl_exceeded(packet)

        for program in list(self.programs):
            if not batch.alive_count():
                break
            if program.supports_batch:
                program.process_batch(self, batch)
                continue
            # Fallback: the scalar program runs per surviving packet.
            survivors = list(batch.survivors())
            _C_BATCH_FALLBACK.inc(len(survivors))
            for i, packet in survivors:
                result = program.process(self, packet)
                if result is None or result is Decision.CONTINUE:
                    continue
                if isinstance(result, Drop):
                    batch.drop(i, result.reason)
                elif isinstance(result, Consume):
                    batch.consume(i)
                elif isinstance(result, Forward):
                    batch.overrides[i] = result.neighbor
                else:
                    raise TypeError(
                        f"program {program.name!r} returned {result!r}")
        stats = self.stats
        stats.packets_dropped_by_program += batch.dropped
        stats.packets_consumed += batch.consumed

        # Local consumption plus next-hop grouping.  Routing is pure in
        # (src, dst, override) for a fixed table state, so resolution is
        # memoized per key; the fast-reroute counter delta is replayed on
        # hits to keep stats identical to the per-packet path.
        overrides = batch.overrides
        alive = batch.alive
        if not overrides and name not in batch.dst:
            # Vectorized routing: no per-packet overrides and nothing
            # addressed to this switch, so resolve each unique
            # (src, dst) pair once.  When every pair routes cleanly (a
            # usable hop, no fast-reroute counter side effects) the
            # grouping runs at C speed; any complication rolls the
            # counter back and falls through to the per-packet replay.
            src_col = batch.src
            dst_col = batch.dst
            frr_before = stats.fast_reroutes
            route_table: Dict[tuple, Optional[str]] = {}
            resolve = self._resolve_route
            clean = True
            for pair in dict.fromkeys(zip(src_col, dst_col)):
                hop = resolve(pair[0], pair[1])
                route_table[pair] = hop
                if hop is None:
                    clean = False
            if clean and stats.fast_reroutes == frr_before:
                hop_set = set(route_table.values())
                if len(hop_set) == 1:
                    # Single egress for the whole window: no per-packet
                    # hop gather needed at all.
                    if batch.alive_count() == n:
                        group = list(packets)
                        sizes = batch.column("size_bytes")
                    else:
                        group = list(compress(packets, alive))
                        sizes = compress(batch.column("size_bytes"), alive)
                    stats.packets_forwarded += len(group)
                    self.links[hop_set.pop()].send_batch(group, sizes=sizes)
                    return
                hops = list(map(route_table.__getitem__,
                                zip(src_col, dst_col)))
                hop_groups: Dict[str, List[Packet]] = {}
                for i in range(n):
                    if alive[i]:
                        hop = hops[i]
                        group = hop_groups.get(hop)
                        if group is None:
                            hop_groups[hop] = group = []
                        group.append(packets[i])
                stats.packets_forwarded += sum(map(len, hop_groups.values()))
                for next_hop, group in hop_groups.items():
                    self.links[next_hop].send_batch(group)
                return
            # Roll back the probe resolutions' only side effect and
            # replay per packet so no-route drops and fast-reroute
            # accounting land exactly as on the sequential path.
            stats.fast_reroutes = frr_before
        override_get = overrides.get if overrides else None
        route_cache: Dict[tuple, tuple] = {}
        cache_get = route_cache.get
        groups: Dict[str, List[Packet]] = {}
        forwarded = 0
        for i in range(n):
            if not alive[i]:
                continue
            packet = packets[i]
            if packet.dst == name:
                if packet.kind == PacketKind.RECONFIG_NOTICE:
                    self.handle_reconfig_notice(packet)
                stats.packets_consumed += 1
                continue
            override = override_get(i) if override_get is not None else None
            cache_key = (packet.src, packet.dst, override)
            cached = cache_get(cache_key)
            if cached is None:
                before = stats.fast_reroutes
                hop = self._resolve_next_hop(packet, override)
                cached = (hop, stats.fast_reroutes - before)
                route_cache[cache_key] = cached
            else:
                stats.fast_reroutes += cached[1]
            next_hop = cached[0]
            if next_hop is None:
                packet.mark_dropped("no_route")
                stats.packets_dropped_no_route += 1
                continue
            forwarded += 1
            group = groups.get(next_hop)
            if group is None:
                groups[next_hop] = group = []
            group.append(packet)
        stats.packets_forwarded += forwarded
        for next_hop, group in groups.items():
            self.links[next_hop].send_batch(group)

    def _reply_ttl_exceeded(self, packet: Packet) -> None:
        """Generate the ICMP time-exceeded reply traceroute relies on.

        The ``reporter`` header is what an obfuscation program rewrites
        (NetHide-style) to hide the true topology; programs get a chance to
        do so through the ``mutate_icmp`` hook in scratch space.
        """
        reporter = self.name
        mutator = self.scratch.get("icmp_reporter_mutator")
        if mutator is not None:
            reporter = mutator(self, packet)
        reply = Packet(
            src=self.name, dst=packet.src, size_bytes=64,
            kind=PacketKind.ICMP_TTL_EXCEEDED, proto=Protocol.ICMP,
            headers={
                "reporter": reporter,
                "probe_id": packet.headers.get("probe_id"),
                "probe_ttl": packet.headers.get("probe_ttl"),
            },
        )
        reply.created_at = self.sim.now
        next_hop = self._resolve_next_hop(reply)
        if next_hop is not None:
            self.send_via(next_hop, reply)

    # ------------------------------------------------------------------
    # Repurposing (Section 3.4)
    # ------------------------------------------------------------------
    def notify_neighbors_of_reconfig(self, clearing: bool = False) -> None:
        """Tell neighbors to route around (or back through) this switch."""
        for neighbor, link in self.links.items():
            notice = Packet(
                src=self.name, dst=neighbor, size_bytes=64,
                kind=PacketKind.RECONFIG_NOTICE, proto=Protocol.UDP,
                headers={"switch": self.name, "clearing": clearing},
            )
            notice.created_at = self.sim.now
            link.send(notice)

    def begin_reconfiguration(self, duration_s: float,
                              hitless: bool = False,
                              on_complete: Optional[Callable[[], None]] = None
                              ) -> None:
        """Start a repurposing window.

        With ``hitless=False`` (Tofino-style, footnote 1 of the paper) the
        switch drops transit traffic for ``duration_s``; neighbors were
        told to fast-reroute via :meth:`notify_neighbors_of_reconfig`.
        With ``hitless=True`` (Trident-style) forwarding continues.
        """
        if duration_s < 0:
            raise ValueError("reconfiguration duration must be >= 0")
        if not hitless:
            self.reconfiguring = True

        def _finish() -> None:
            self.reconfiguring = False
            self.notify_neighbors_of_reconfig(clearing=True)
            if on_complete is not None:
                on_complete()

        # Node-owned so topology removal cancels the completion timer
        # instead of leaving it to fire against a removed switch.
        self.own(self.sim.schedule(duration_s, _finish))

    def handle_reconfig_notice(self, packet: Packet) -> None:
        """Process a neighbor's reconfiguration notice."""
        switch = packet.headers["switch"]
        if packet.headers.get("clearing"):
            self.avoid_neighbors.discard(switch)
        else:
            self.avoid_neighbors.add(switch)
