"""The programmable switch: pipeline execution, forwarding, repurposing.

A :class:`ProgrammableSwitch` executes an ordered list of installed
*switch programs* on every packet (the runtime face of the paper's packet
processing modules), then forwards per its routing table.  It also models
the operational machinery of Section 3.4: resource accounting via a
:class:`~repro.dataplane.resources.ResourceLedger`, reconfiguration
downtime with neighbor notification, and fast reroute around neighbors
that are down or reconfiguring.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..dataplane.resources import ResourceLedger, ResourceVector, TOFINO_LIKE
from .engine import Simulator
from .links import Link
from .node import Node
from .packet import Packet, PacketKind, Protocol


class Decision(enum.Enum):
    """Terminal decisions a switch program can make about a packet."""

    CONTINUE = "continue"


@dataclass
class Drop:
    """Drop the packet, recording why."""

    reason: str


@dataclass
class Consume:
    """Absorb the packet (e.g. a probe that terminates here)."""


@dataclass
class Forward:
    """Override normal routing: send out of the link to ``neighbor``."""

    neighbor: str


#: What `SwitchProgram.process` may return: ``None``/``Decision.CONTINUE``
#: to keep going, or one of the dataclasses above.
ProgramResult = Optional[object]


class LegacySwitchError(RuntimeError):
    """Raised when installing a program on a fixed-function switch."""


class SwitchProgram:
    """Base class for the runtime behaviour installed on a switch.

    Subclasses override :meth:`process`.  ``name`` must be unique per
    switch (the resource ledger keys on it); ``requirement`` is the
    program's resource vector.
    """

    def __init__(self, name: str,
                 requirement: ResourceVector = ResourceVector.zero()):
        self.name = name
        self.requirement = requirement
        self.switch: Optional["ProgrammableSwitch"] = None

    def on_install(self, switch: "ProgrammableSwitch") -> None:
        """Hook called when the program is installed."""
        self.switch = switch

    def on_remove(self, switch: "ProgrammableSwitch") -> None:
        """Hook called when the program is removed."""
        self.switch = None

    def process(self, switch: "ProgrammableSwitch",
                packet: Packet) -> ProgramResult:
        raise NotImplementedError

    def export_state(self) -> Dict[str, Any]:
        """Serializable register state, for state transfer (Section 3.4)."""
        return {}

    def import_state(self, state: Dict[str, Any]) -> None:
        """Restore register state produced by :meth:`export_state`."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


@dataclass
class SwitchStats:
    """Forwarding-plane counters."""

    packets_forwarded: int = 0
    packets_dropped_no_route: int = 0
    packets_dropped_by_program: int = 0
    packets_dropped_reconfig: int = 0
    packets_consumed: int = 0
    ttl_expired: int = 0
    fast_reroutes: int = 0


class ProgrammableSwitch(Node):
    """A P4-style switch with a multiplexed, reconfigurable pipeline.

    With ``programmable=False`` the switch models a *legacy* fixed-
    function device (§2: "legacy elements can still be part of the
    default mode"): it forwards exactly like any other switch but
    refuses program installation — FastFlex machinery must route
    through it, not run on it.
    """

    def __init__(self, sim: Simulator, name: str,
                 resources: ResourceVector = TOFINO_LIKE,
                 programmable: bool = True):
        super().__init__(sim, name)
        self.programmable = programmable
        if not programmable:
            resources = ResourceVector.zero()
        self.ledger = ResourceLedger(resources)
        self.stats = SwitchStats()
        #: Ordered installed programs, executed per packet.
        self.programs: List[SwitchProgram] = []
        self._programs_by_name: Dict[str, SwitchProgram] = {}
        #: ECMP routing table: destination host -> candidate next hops.
        self.routes: Dict[str, List[str]] = {}
        #: Per-(src, dst) pinned next hops — installed by TE deployments
        #: and by rerouting defenses; consulted before ``routes`` so
        #: packet-level traffic follows the same paths the fluid model
        #: charges for those pairs.
        self.flow_routes: Dict[tuple, str] = {}
        #: Fast-reroute alternates: unusable next hop -> fallback next hop
        #: (coarse, destination-agnostic; used when no per-destination
        #: alternate is installed).
        self.frr: Dict[str, str] = {}
        #: Loop-free alternates per (unusable next hop, destination),
        #: installed by
        #: :func:`repro.netsim.routing.install_fast_reroute_alternates`.
        self.frr_dst: Dict[tuple, str] = {}
        #: Neighbors currently reconfiguring (avoided by forwarding).
        self.avoid_neighbors: set = set()
        #: True while this switch itself is being repurposed (Tofino-style
        #: downtime); all transit packets are dropped meanwhile.
        self.reconfiguring = False
        #: Free-form per-switch state used by mode machinery and boosters.
        self.scratch: Dict[str, Any] = {}
        #: Observers called on every received packet (monitors, tests).
        self.taps: List[Callable[["ProgrammableSwitch", Packet], None]] = []

    # ------------------------------------------------------------------
    # Program management (resource-checked)
    # ------------------------------------------------------------------
    def install_program(self, program: SwitchProgram,
                        position: Optional[int] = None) -> None:
        """Install a program, reserving its resources; raises if it
        does not fit (the Section 3.1 feasibility constraint)."""
        if not self.programmable:
            raise LegacySwitchError(
                f"{self.name} is a legacy fixed-function switch; "
                f"programs cannot be installed on it")
        if program.name in self._programs_by_name:
            raise ValueError(
                f"{self.name}: program {program.name!r} already installed")
        self.ledger.allocate(program.name, program.requirement)
        if position is None:
            self.programs.append(program)
        else:
            self.programs.insert(position, program)
        self._programs_by_name[program.name] = program
        program.on_install(self)

    def remove_program(self, name: str) -> SwitchProgram:
        program = self._programs_by_name.pop(name, None)
        if program is None:
            raise KeyError(f"{self.name}: no program named {name!r}")
        self.programs.remove(program)
        self.ledger.release(name)
        program.on_remove(self)
        return program

    def get_program(self, name: str) -> SwitchProgram:
        try:
            return self._programs_by_name[name]
        except KeyError:
            raise KeyError(
                f"{self.name}: no program named {name!r}; installed: "
                f"{sorted(self._programs_by_name)}") from None

    def has_program(self, name: str) -> bool:
        return name in self._programs_by_name

    # ------------------------------------------------------------------
    # Routing table management
    # ------------------------------------------------------------------
    def set_route(self, dst: str, next_hops: Sequence[str]) -> None:
        hops = list(next_hops)
        for hop in hops:
            if hop not in self.links:
                raise ValueError(
                    f"{self.name}: next hop {hop} is not a neighbor")
        self.routes[dst] = hops

    def clear_routes(self) -> None:
        self.routes.clear()

    def _ecmp_pick(self, packet: Packet, candidates: List[str]) -> str:
        """Deterministic hash-based ECMP selection.

        Hashes only (src, dst) — per-pair rather than per-5-tuple — so a
        host's traceroute probes follow the same path as its flows
        (Paris-traceroute-style stability, and it keeps the fluid model's
        per-pair paths consistent with packet-level forwarding).
        """
        if len(candidates) == 1:
            return candidates[0]
        key = f"{packet.src}|{packet.dst}"
        digest = zlib.crc32(key.encode())
        return candidates[digest % len(candidates)]

    def _usable(self, neighbor: str) -> bool:
        """Is the neighbor a valid forwarding target *as far as this
        switch knows*?  A silently reconfiguring neighbor still looks
        usable — that is precisely why §3.4 requires the notification
        protocol: only an explicit notice (``avoid_neighbors``) or a
        dead link diverts traffic before it blackholes."""
        link = self.links.get(neighbor)
        if link is None or not link.up:
            return False
        return neighbor not in self.avoid_neighbors

    def _resolve_next_hop(self, packet: Packet,
                          override: Optional[str] = None) -> Optional[str]:
        """Pick a usable next hop, applying fast reroute when the primary
        choice is down or reconfiguring (Section 3.4)."""
        if override is not None:
            if self._usable(override):
                return override
            rerouted = self._frr_alternate(override, packet.dst)
            if rerouted is not None:
                return rerouted
            return None
        pinned = self.flow_routes.get((packet.src, packet.dst))
        if pinned is not None:
            if self._usable(pinned):
                return pinned
            alternate = self._frr_alternate(pinned, packet.dst)
            if alternate is not None:
                return alternate
            # Fall through to the destination-based tables.
        candidates = self.routes.get(packet.dst, [])
        if not candidates:
            return None
        primary = self._ecmp_pick(packet, candidates)
        if self._usable(primary):
            return primary
        # Fast reroute: explicit alternate first, then any usable ECMP peer.
        alternate = self._frr_alternate(primary, packet.dst)
        if alternate is not None:
            return alternate
        for candidate in candidates:
            if candidate != primary and self._usable(candidate):
                self.stats.fast_reroutes += 1
                return candidate
        return None

    def _frr_alternate(self, failed: str, dst: str) -> Optional[str]:
        """A usable fast-reroute alternate for the failed next hop:
        the per-destination loop-free alternate if installed, else the
        coarse per-neighbor one."""
        for candidate in (self.frr_dst.get((failed, dst)),
                          self.frr.get(failed)):
            if candidate is not None and candidate != failed \
                    and self._usable(candidate):
                self.stats.fast_reroutes += 1
                return candidate
        return None

    # ------------------------------------------------------------------
    # Packet handling
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, from_link: Optional[Link] = None) -> None:
        if self.reconfiguring:
            packet.mark_dropped("switch_reconfiguring")
            self.stats.packets_dropped_reconfig += 1
            return
        packet.path_taken.append(self.name)
        for tap in self.taps:
            tap(self, packet)

        local = packet.dst == self.name
        if not local:
            # TTL processing happens before the pipeline so traceroute
            # probes that expire here are visible to obfuscation programs
            # via the generated ICMP reply.
            packet.ttl -= 1
            if packet.ttl <= 0:
                self.stats.ttl_expired += 1
                self._reply_ttl_exceeded(packet)
                return

        override: Optional[str] = None
        for program in list(self.programs):
            result = program.process(self, packet)
            if result is None or result is Decision.CONTINUE:
                continue
            if isinstance(result, Drop):
                packet.mark_dropped(result.reason)
                self.stats.packets_dropped_by_program += 1
                return
            if isinstance(result, Consume):
                self.stats.packets_consumed += 1
                return
            if isinstance(result, Forward):
                override = result.neighbor
                continue
            raise TypeError(
                f"program {program.name!r} returned {result!r}")

        if local:
            # Control packets addressed to this switch terminate here;
            # built-in kinds get their handlers, the rest were the
            # pipeline's to consume.
            if packet.kind == PacketKind.RECONFIG_NOTICE:
                self.handle_reconfig_notice(packet)
            self.stats.packets_consumed += 1
            return

        next_hop = self._resolve_next_hop(packet, override)
        if next_hop is None:
            packet.mark_dropped("no_route")
            self.stats.packets_dropped_no_route += 1
            return
        self.stats.packets_forwarded += 1
        self.send_via(next_hop, packet)

    def _reply_ttl_exceeded(self, packet: Packet) -> None:
        """Generate the ICMP time-exceeded reply traceroute relies on.

        The ``reporter`` header is what an obfuscation program rewrites
        (NetHide-style) to hide the true topology; programs get a chance to
        do so through the ``mutate_icmp`` hook in scratch space.
        """
        reporter = self.name
        mutator = self.scratch.get("icmp_reporter_mutator")
        if mutator is not None:
            reporter = mutator(self, packet)
        reply = Packet(
            src=self.name, dst=packet.src, size_bytes=64,
            kind=PacketKind.ICMP_TTL_EXCEEDED, proto=Protocol.ICMP,
            headers={
                "reporter": reporter,
                "probe_id": packet.headers.get("probe_id"),
                "probe_ttl": packet.headers.get("probe_ttl"),
            },
        )
        reply.created_at = self.sim.now
        next_hop = self._resolve_next_hop(reply)
        if next_hop is not None:
            self.send_via(next_hop, reply)

    # ------------------------------------------------------------------
    # Repurposing (Section 3.4)
    # ------------------------------------------------------------------
    def notify_neighbors_of_reconfig(self, clearing: bool = False) -> None:
        """Tell neighbors to route around (or back through) this switch."""
        for neighbor, link in self.links.items():
            notice = Packet(
                src=self.name, dst=neighbor, size_bytes=64,
                kind=PacketKind.RECONFIG_NOTICE, proto=Protocol.UDP,
                headers={"switch": self.name, "clearing": clearing},
            )
            notice.created_at = self.sim.now
            link.send(notice)

    def begin_reconfiguration(self, duration_s: float,
                              hitless: bool = False,
                              on_complete: Optional[Callable[[], None]] = None
                              ) -> None:
        """Start a repurposing window.

        With ``hitless=False`` (Tofino-style, footnote 1 of the paper) the
        switch drops transit traffic for ``duration_s``; neighbors were
        told to fast-reroute via :meth:`notify_neighbors_of_reconfig`.
        With ``hitless=True`` (Trident-style) forwarding continues.
        """
        if duration_s < 0:
            raise ValueError("reconfiguration duration must be >= 0")
        if not hitless:
            self.reconfiguring = True

        def _finish() -> None:
            self.reconfiguring = False
            self.notify_neighbors_of_reconfig(clearing=True)
            if on_complete is not None:
                on_complete()

        self.sim.schedule(duration_s, _finish)

    def handle_reconfig_notice(self, packet: Packet) -> None:
        """Process a neighbor's reconfiguration notice."""
        switch = packet.headers["switch"]
        if packet.headers.get("clearing"):
            self.avoid_neighbors.discard(switch)
        else:
            self.avoid_neighbors.add(switch)
