"""Packet-level traffic sources and meters.

The fluid model covers bulk throughput experiments; these helpers drive
the *per-packet* face of the system — the paper's bmv2-style validation
path — with hosts emitting real :class:`~repro.netsim.packet.Packet`
streams through the switch pipelines, and meters measuring what arrives.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional

from .engine import PeriodicProcess, Simulator
from .node import Host
from .packet import Packet, PacketKind, Protocol, TcpFlags
from .topology import Topology


class PacketSource:
    """A host emitting a steady packet stream to one destination."""

    def __init__(self, topo: Topology, src: str, dst: str,
                 rate_pps: float, size_bytes: int = 1000,
                 proto: Protocol = Protocol.UDP,
                 sport: int = 0, dport: int = 80,
                 tcp_flags: TcpFlags = TcpFlags.NONE,
                 headers: Optional[Dict] = None):
        if rate_pps <= 0:
            raise ValueError("rate_pps must be positive")
        self.topo = topo
        self.sim: Simulator = topo.sim
        self.host: Host = topo.host(src)
        self.dst = dst
        self.rate_pps = rate_pps
        self.size_bytes = size_bytes
        self.proto = proto
        self.sport = sport
        self.dport = dport
        self.tcp_flags = tcp_flags
        self.headers = dict(headers or {})
        self.packets_sent = 0
        self._process: Optional[PeriodicProcess] = None

    def start(self, delay_s: float = 0.0) -> "PacketSource":
        self._process = self.sim.every(1.0 / self.rate_pps, self._emit,
                                       start=delay_s)
        self.host.own(self._process)
        return self

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    def _emit(self) -> None:
        packet = Packet(
            src=self.host.name, dst=self.dst, size_bytes=self.size_bytes,
            proto=self.proto, sport=self.sport, dport=self.dport,
            tcp_flags=self.tcp_flags, headers=dict(self.headers))
        self.host.originate(packet)
        self.packets_sent += 1


class BatchPacketSource:
    """A host emitting one coalesced packet batch per window.

    The batch-path counterpart of :class:`PacketSource`: instead of one
    simulator event per packet, it fires every ``window_s`` and emits
    that window's worth of packets as a single batch —
    ``Host.originate_batch`` → ``Link.send_batch`` →
    ``ProgrammableSwitch.receive_batch``.  Fractional packets per window
    accumulate as credit, so the long-run rate matches ``rate_pps``
    exactly even when ``rate_pps * window_s`` is not an integer.
    """

    def __init__(self, topo: Topology, src: str, dst: str,
                 rate_pps: float, window_s: float = 0.01,
                 size_bytes: int = 1000,
                 proto: Protocol = Protocol.UDP,
                 sport: int = 0, dport: int = 80,
                 tcp_flags: TcpFlags = TcpFlags.NONE,
                 headers: Optional[Dict] = None):
        if rate_pps <= 0:
            raise ValueError("rate_pps must be positive")
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.topo = topo
        self.sim: Simulator = topo.sim
        self.host: Host = topo.host(src)
        self.dst = dst
        self.rate_pps = rate_pps
        self.window_s = window_s
        self.size_bytes = size_bytes
        self.proto = proto
        self.sport = sport
        self.dport = dport
        self.tcp_flags = tcp_flags
        self.headers = dict(headers or {})
        self.packets_sent = 0
        self.batches_sent = 0
        self._credit = 0.0
        self._process: Optional[PeriodicProcess] = None

    def start(self, delay_s: float = 0.0) -> "BatchPacketSource":
        self._process = self.sim.every(self.window_s, self._emit_window,
                                       start=delay_s)
        self.host.own(self._process)
        return self

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    def _emit_window(self) -> None:
        self._credit += self.rate_pps * self.window_s
        count = int(self._credit)
        if count <= 0:
            return
        self._credit -= count
        packets = [
            Packet(src=self.host.name, dst=self.dst,
                   size_bytes=self.size_bytes, proto=self.proto,
                   sport=self.sport, dport=self.dport,
                   tcp_flags=self.tcp_flags, headers=dict(self.headers))
            for _ in range(count)
        ]
        self.host.originate_batch(packets)
        self.packets_sent += count
        self.batches_sent += 1


@dataclass
class MeterWindow:
    """One sampling window's delivery stats for a (src -> dst) pair."""

    start: float
    end: float
    packets: int
    bytes: int

    @property
    def rate_bps(self) -> float:
        span = self.end - self.start
        return self.bytes * 8 / span if span > 0 else 0.0


class ThroughputMeter:
    """Measures per-source delivery at a destination host."""

    def __init__(self, topo: Topology, dst: str,
                 window_s: float = 1.0):
        if window_s <= 0:
            raise ValueError("window must be positive")
        self.sim = topo.sim
        self.dst = dst
        self.window_s = window_s
        self.total_packets: Dict[str, int] = defaultdict(int)
        self.total_bytes: Dict[str, int] = defaultdict(int)
        self.windows: Dict[str, List[MeterWindow]] = defaultdict(list)
        self._window_packets: Dict[str, int] = defaultdict(int)
        self._window_bytes: Dict[str, int] = defaultdict(int)
        self._window_start = 0.0
        topo.host(dst).on_packet(self._on_packet)
        self._process = self.sim.every(window_s, self._roll_window,
                                       start=window_s)

    def _on_packet(self, packet: Packet) -> None:
        if packet.kind != PacketKind.DATA:
            return
        self.total_packets[packet.src] += 1
        self.total_bytes[packet.src] += packet.size_bytes
        self._window_packets[packet.src] += 1
        self._window_bytes[packet.src] += packet.size_bytes

    def _roll_window(self) -> None:
        now = self.sim.now
        # Sorted so self.windows' key insertion order (and anything
        # downstream that walks it) is independent of string hashing.
        for src in sorted(set(self._window_packets) | set(self.windows)):
            self.windows[src].append(MeterWindow(
                start=self._window_start, end=now,
                packets=self._window_packets.get(src, 0),
                bytes=self._window_bytes.get(src, 0)))
        self._window_packets.clear()
        self._window_bytes.clear()
        self._window_start = now

    # ------------------------------------------------------------------
    def delivered(self, src: str) -> int:
        return self.total_packets.get(src, 0)

    def rate_bps(self, src: str, last_n_windows: int = 1) -> float:
        """Mean delivery rate of the most recent complete windows."""
        windows = self.windows.get(src, [])
        if not windows:
            return 0.0
        recent = windows[-last_n_windows:]
        span = sum(w.end - w.start for w in recent)
        total = sum(w.bytes for w in recent)
        return total * 8 / span if span > 0 else 0.0

    def stop(self) -> None:
        self._process.stop()
