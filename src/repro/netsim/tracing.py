"""Deprecated alias for :mod:`repro.netsim.traceroute`.

This module was always traceroute *client* code (TTL-limited probes,
ICMP time-exceeded collection); the name ``tracing`` now belongs to
structured event tracing in :mod:`repro.telemetry`.  Import from
``repro.netsim.traceroute`` instead — this shim re-exports the public
names and warns once per process.
"""

from __future__ import annotations

import warnings

from .traceroute import TracerouteClient, TracerouteResult

__all__ = ["TracerouteClient", "TracerouteResult"]

warnings.warn(
    "repro.netsim.tracing was renamed to repro.netsim.traceroute "
    "(the module is traceroute client code, not event tracing — see "
    "repro.telemetry for that); update imports",
    DeprecationWarning, stacklevel=2)
