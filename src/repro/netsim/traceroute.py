"""Traceroute through the simulated network.

The Crossfire attacker maps the topology by tracerouting to public servers
near the victim (Section 4).  :class:`TracerouteClient` reproduces that:
it launches TTL-limited probes from a host, collects the ICMP
time-exceeded replies, and assembles the reported path.

Crucially, the *reported* path is whatever the switches' ICMP reporters
say — when the NetHide-style obfuscation booster is active, the reported
path diverges from the real one, which is exactly how FastFlex hides its
rerouting from the attacker.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .node import Host
from .packet import Packet, PacketKind, Protocol
from .topology import Topology

_trace_ids = itertools.count(1)


@dataclass
class TracerouteResult:
    """The outcome of one traceroute run."""

    src: str
    dst: str
    #: Reporter names indexed by TTL (1-based); missing TTLs yield ``None``.
    hops_by_ttl: Dict[int, str] = field(default_factory=dict)
    reached: bool = False
    #: Lowest TTL at which the destination itself replied.
    reached_ttl: Optional[int] = None
    completed_at: float = 0.0

    @property
    def path(self) -> List[str]:
        """Reported hops in TTL order, up to the first gap or the first
        TTL at which the destination answered (higher-TTL probes that also
        reach the destination are redundant, as in real traceroute)."""
        hops = []
        for ttl in sorted(self.hops_by_ttl):
            if ttl != len(hops) + 1:
                break
            hops.append(self.hops_by_ttl[ttl])
            if self.reached_ttl is not None and ttl >= self.reached_ttl:
                break
        return hops

    def reported_links(self) -> List[tuple]:
        """Adjacent reported-hop pairs (the attacker's view of links)."""
        path = self.path
        return list(zip(path, path[1:]))


class TracerouteClient:
    """Issues traceroutes from one host and gathers the replies."""

    def __init__(self, topo: Topology, host: str,
                 probe_spacing_s: float = 0.001,
                 timeout_s: float = 0.5):
        self.topo = topo
        self.sim = topo.sim
        self.host: Host = topo.host(host)
        self.probe_spacing_s = probe_spacing_s
        self.timeout_s = timeout_s
        self._pending: Dict[int, _PendingTrace] = {}
        self.host.on_packet(self._on_packet)

    # ------------------------------------------------------------------
    def trace(self, dst: str, max_ttl: int = 16,
              callback: Optional[Callable[[TracerouteResult], None]] = None
              ) -> int:
        """Start a traceroute; returns its id.  ``callback`` fires when the
        destination replies or the timeout lapses."""
        trace_id = next(_trace_ids)
        pending = _PendingTrace(
            result=TracerouteResult(src=self.host.name, dst=dst),
            callback=callback, max_ttl=max_ttl)
        self._pending[trace_id] = pending
        for ttl in range(1, max_ttl + 1):
            delay = (ttl - 1) * self.probe_spacing_s
            self.sim.schedule(delay, self._send_probe, trace_id, dst, ttl)
        self.sim.schedule(self.timeout_s, self._finish, trace_id)
        return trace_id

    def result(self, trace_id: int) -> Optional[TracerouteResult]:
        pending = self._pending.get(trace_id)
        return pending.result if pending is not None else None

    # ------------------------------------------------------------------
    def _send_probe(self, trace_id: int, dst: str, ttl: int) -> None:
        pending = self._pending.get(trace_id)
        if pending is None or pending.done:
            return
        probe = Packet(
            src=self.host.name, dst=dst, size_bytes=64,
            kind=PacketKind.TRACEROUTE, proto=Protocol.UDP,
            ttl=ttl,
            dport=33434 + ttl,
            headers={"probe_id": trace_id, "probe_ttl": ttl},
        )
        self.host.originate(probe)

    def _on_packet(self, packet: Packet) -> None:
        if packet.kind != PacketKind.ICMP_TTL_EXCEEDED:
            return
        trace_id = packet.headers.get("probe_id")
        pending = self._pending.get(trace_id)
        if pending is None or pending.done:
            return
        ttl = packet.headers.get("probe_ttl")
        reporter = packet.headers.get("reporter")
        if ttl is not None and reporter is not None:
            pending.result.hops_by_ttl.setdefault(ttl, reporter)
        if packet.headers.get("destination_reached"):
            pending.result.reached = True
            if ttl is not None:
                current = pending.result.reached_ttl
                pending.result.reached_ttl = (
                    ttl if current is None else min(current, ttl))
            # Wait a beat for stragglers with smaller TTLs, then finish.
            self.sim.schedule(2 * self.probe_spacing_s,
                              self._finish, trace_id)

    def _finish(self, trace_id: int) -> None:
        pending = self._pending.get(trace_id)
        if pending is None or pending.done:
            return
        pending.done = True
        pending.result.completed_at = self.sim.now
        if pending.callback is not None:
            pending.callback(pending.result)


@dataclass
class _PendingTrace:
    result: TracerouteResult
    callback: Optional[Callable[[TracerouteResult], None]]
    max_ttl: int
    done: bool = False
