"""Traffic matrices and workload generation.

The controller plans the default mode against a *stable traffic matrix*
(Section 2: "optimal configurations computed by centralized control, e.g.,
using traffic engineering over a stable traffic matrix").  This module
provides that matrix abstraction plus generators for the legitimate
workloads the experiments use.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .flows import Flow, make_flow
from .topology import Topology


@dataclass
class TrafficMatrix:
    """Aggregate demands between host pairs, in bits per second."""

    demands: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def set_demand(self, src: str, dst: str, bps: float) -> None:
        if bps < 0:
            raise ValueError(f"demand must be >= 0, got {bps}")
        if src == dst:
            raise ValueError("src and dst must differ")
        self.demands[(src, dst)] = bps

    def demand(self, src: str, dst: str) -> float:
        return self.demands.get((src, dst), 0.0)

    def pairs(self) -> List[Tuple[str, str]]:
        return sorted(self.demands)

    def total(self) -> float:
        return sum(self.demands.values())

    def scaled(self, factor: float) -> "TrafficMatrix":
        return TrafficMatrix({k: v * factor for k, v in self.demands.items()})

    @classmethod
    def from_flows(cls, flows: Iterable[Flow]) -> "TrafficMatrix":
        tm = cls()
        for flow in flows:
            key = (flow.src, flow.dst)
            tm.demands[key] = tm.demands.get(key, 0.0) + flow.demand_bps
        return tm

    def to_flows(self, *, elastic: bool = True, dport: int = 80,
                 start_time: float = 0.0) -> List[Flow]:
        """One aggregate flow per nonzero matrix entry."""
        flows = []
        for (src, dst) in self.pairs():
            bps = self.demands[(src, dst)]
            if bps <= 0:
                continue
            flows.append(make_flow(src, dst, bps, elastic=elastic,
                                   dport=dport, start_time=start_time))
        return flows


def uniform_matrix(topo: Topology, per_pair_bps: float,
                   hosts: Optional[List[str]] = None) -> TrafficMatrix:
    """All-to-all demand among ``hosts`` (default: every host)."""
    names = hosts if hosts is not None else topo.host_names
    tm = TrafficMatrix()
    for src in names:
        for dst in names:
            if src != dst:
                tm.set_demand(src, dst, per_pair_bps)
    return tm


def gravity_matrix(topo: Topology, total_bps: float,
                   rng: Optional[random.Random] = None,
                   hosts: Optional[List[str]] = None) -> TrafficMatrix:
    """A gravity-model matrix: demand proportional to endpoint masses."""
    names = hosts if hosts is not None else topo.host_names
    if len(names) < 2:
        raise ValueError("need at least two hosts for a traffic matrix")
    rng = rng if rng is not None else topo.sim.rng
    masses = {h: rng.uniform(0.5, 2.0) for h in names}
    tm = TrafficMatrix()
    norm = sum(masses[s] * masses[d] for s in names for d in names if s != d)
    for src in names:
        for dst in names:
            if src == dst:
                continue
            share = masses[src] * masses[dst] / norm
            tm.set_demand(src, dst, total_bps * share)
    return tm


def client_server_flows(clients: List[str], server: str,
                        per_client_bps: float, *,
                        dport: int = 80,
                        start_time: float = 0.0) -> List[Flow]:
    """The Figure 3 legitimate workload: each client pulls from the victim
    server at a steady aggregate rate."""
    return [make_flow(client, server, per_client_bps, dport=dport,
                      start_time=start_time)
            for client in clients]


def poisson_flow_arrivals(rng: random.Random, clients: List[str],
                          server: str, rate_per_s: float,
                          mean_size_bytes: float, horizon_s: float,
                          bandwidth_bps: float = 50e6) -> List[Flow]:
    """Finite flows arriving Poisson-style (used by churn tests).

    Each flow transfers an exponentially sized payload at up to
    ``bandwidth_bps``; its ``end_time`` assumes it gets full bandwidth
    (an optimistic close — adequate for workload-shape tests).
    """
    if rate_per_s <= 0:
        raise ValueError("arrival rate must be positive")
    flows = []
    t = 0.0
    while True:
        t += rng.expovariate(rate_per_s)
        if t >= horizon_s:
            break
        size = rng.expovariate(1.0 / mean_size_bytes)
        duration = max(size * 8 / bandwidth_bps, 1e-3)
        client = rng.choice(clients)
        # Source ports identify connections but must stay inside the
        # 16-bit port space; wrap into [1024, 65535) on long horizons.
        sport = 1024 + len(flows) % (65535 - 1024)
        flows.append(make_flow(client, server, bandwidth_bps,
                               sport=sport,
                               start_time=t, end_time=t + duration))
    return flows
