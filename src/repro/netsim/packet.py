"""Packets and header machinery.

Packets in this simulator carry a small fixed set of IP-like fields plus an
extensible *custom header* mapping.  The custom header models what a P4
program would express as user-defined headers: FastFlex mode-change probes,
Hula-style utilization probes, piggybacked state-transfer values, and
detector synchronization digests all ride in it.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: Conventional TTL for freshly minted packets.
DEFAULT_TTL = 64

_packet_ids = itertools.count(1)


class PacketKind(enum.Enum):
    """Traffic classes the data plane distinguishes by parsing."""

    DATA = "data"
    PROBE = "probe"                  # Hula-style path-utilization probe
    MODE_CHANGE = "mode_change"      # FastFlex distributed mode-change probe
    TRACEROUTE = "traceroute"        # TTL-limited probe from a host
    ICMP_TTL_EXCEEDED = "icmp_ttl_exceeded"
    STATE_TRANSFER = "state_transfer"  # piggybacked register state
    SYNC = "sync"                    # detector view synchronization digest
    RECONFIG_NOTICE = "reconfig_notice"  # switch-about-to-repurpose notice

    # Enum.__hash__ is a Python-level call; kinds are hashed per packet
    # by the batch kernels (kind-count Counters, flow-tuple dedupe).
    # Members are singletons with identity equality, so the C identity
    # hash is a coherent drop-in — nothing persists hash() values.
    __hash__ = object.__hash__


class Protocol(enum.Enum):
    """Transport protocols the flow table keys on."""

    TCP = 6
    UDP = 17
    ICMP = 1

    __hash__ = object.__hash__  # see PacketKind.__hash__


@dataclass(frozen=True)
class FlowKey:
    """Canonical 5-tuple identifying a flow."""

    src: str
    dst: str
    proto: Protocol = Protocol.TCP
    sport: int = 0
    dport: int = 0

    def __hash__(self) -> int:
        # Same value the dataclass-generated hash would produce, but
        # computed once per object: flow keys are hashed repeatedly by
        # the batch kernels (dedup, totals, LRU reorder), and the tuple
        # hash recomputes the Python-level Protocol.__hash__ every time.
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            value = hash((self.src, self.dst, self.proto,
                          self.sport, self.dport))
            object.__setattr__(self, "_hash", value)
            return value

    def reversed(self) -> "FlowKey":
        """The key of the reverse direction (for TCP state tracking)."""
        return FlowKey(self.dst, self.src, self.proto, self.dport, self.sport)

    def as_tuple(self) -> Tuple[str, str, int, int, int]:
        return (self.src, self.dst, self.proto.value, self.sport, self.dport)

    def __str__(self) -> str:
        return (f"{self.src}:{self.sport}->{self.dst}:{self.dport}"
                f"/{self.proto.name.lower()}")


class TcpFlags(enum.IntFlag):
    """TCP flag bits used by the per-flow state machine boosters."""

    NONE = 0
    SYN = 0x02
    ACK = 0x10
    FIN = 0x01
    RST = 0x04
    PSH = 0x08


@dataclass
class Packet:
    """A simulated packet.

    Attributes
    ----------
    src, dst:
        Host names (the simulator uses symbolic addresses).
    size_bytes:
        Wire size used for serialization-delay and queue accounting.
    kind:
        The :class:`PacketKind` the parser would classify this packet as.
    headers:
        Custom P4-style headers, keyed by field name.  Mutated in place by
        packet-processing modules (e.g. a probe accumulates the max link
        utilization it has seen).
    """

    src: str
    dst: str
    size_bytes: int = 1500
    kind: PacketKind = PacketKind.DATA
    proto: Protocol = Protocol.TCP
    sport: int = 0
    dport: int = 0
    ttl: int = DEFAULT_TTL
    tcp_flags: TcpFlags = TcpFlags.NONE
    headers: Dict[str, Any] = field(default_factory=dict)
    pkt_id: int = field(default_factory=lambda: next(_packet_ids))
    created_at: float = 0.0
    #: Filled in by switches as the packet travels; used by traceroute and
    #: by tests asserting on actual forwarding behaviour.
    path_taken: list = field(default_factory=list)
    #: Set by a drop decision; carries the reason for observability.
    dropped: Optional[str] = None

    @property
    def flow_key(self) -> FlowKey:
        return FlowKey(self.src, self.dst, self.proto, self.sport, self.dport)

    @property
    def size_bits(self) -> int:
        return self.size_bytes * 8

    def mark_dropped(self, reason: str) -> None:
        """Record a drop decision; the first reason wins."""
        if self.dropped is None:
            self.dropped = reason

    def copy_for_duplicate(self) -> "Packet":
        """A shallow clone with a fresh packet id (for replication/FEC)."""
        clone = Packet(
            src=self.src, dst=self.dst, size_bytes=self.size_bytes,
            kind=self.kind, proto=self.proto, sport=self.sport,
            dport=self.dport, ttl=self.ttl, tcp_flags=self.tcp_flags,
            headers=dict(self.headers), created_at=self.created_at,
        )
        return clone

    def __repr__(self) -> str:
        return (f"Packet(#{self.pkt_id} {self.kind.value} "
                f"{self.flow_key} ttl={self.ttl} size={self.size_bytes}B)")


def make_probe(src: str, dst: str, kind: PacketKind,
               headers: Optional[Dict[str, Any]] = None,
               size_bytes: int = 64) -> Packet:
    """Convenience constructor for small control-plane-in-data-plane packets."""
    return Packet(src=src, dst=dst, size_bytes=size_bytes, kind=kind,
                  proto=Protocol.UDP, headers=dict(headers or {}))
