"""Cross-domain federation (§6 "Federation").

"If multiple domains deploy FastFlex, they would be able to
collaboratively detect and mitigate more advanced attacks.  At the same
time, federation would raise new challenges in both technical and
non-technical aspects, such as trust, authentication, and privacy."

This module implements that sketch:

* **Threat advisories** — when a domain's detector confirms an attack,
  it publishes an advisory naming the attack type and the offending
  sources.  For privacy, sources travel as salted hashes: a peer can
  match them against traffic it actually sees, but the advisory leaks
  no raw addresses ([63]-style collaborative security).
* **Trust** — advisories are only accepted from explicitly trusted
  peers, and only when they carry at least ``min_evidence`` observations
  (an untrusted or noisy peer cannot force another domain into a
  defense mode).
* **Watchlists** — accepted advisories populate a TTL-bounded watchlist;
  the receiving domain's defenses consult it to classify matching
  traffic immediately instead of waiting out their own detection
  thresholds (faster mitigation of an attack that moves between
  domains).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..dataplane.registers import stable_hash
from ..netsim.engine import Simulator

#: Salt shared by federated peers (stands in for the keyed hashing a
#: real deployment would negotiate).
FEDERATION_SALT = 0x5EED

_advisory_ids = itertools.count(1)


def hash_source(source: str) -> int:
    """Privacy-preserving identifier for an endpoint."""
    return stable_hash(source, FEDERATION_SALT)


@dataclass(frozen=True)
class ThreatAdvisory:
    """One domain's attack report to its peers."""

    origin_domain: str
    attack_type: str
    #: Salted hashes of the suspected sources (never raw addresses).
    source_hashes: Tuple[int, ...]
    #: How many independent observations back this advisory.
    evidence: int
    issued_at: float
    advisory_id: int = field(default_factory=lambda: next(_advisory_ids))

    @classmethod
    def from_sources(cls, origin: str, attack_type: str,
                     sources: Iterable[str], evidence: int,
                     issued_at: float) -> "ThreatAdvisory":
        hashes = tuple(sorted(hash_source(s) for s in set(sources)))
        return cls(origin_domain=origin, attack_type=attack_type,
                   source_hashes=hashes, evidence=evidence,
                   issued_at=issued_at)


@dataclass
class WatchlistEntry:
    attack_type: str
    origin_domain: str
    expires_at: float


class FederationPeer:
    """One domain's federation endpoint."""

    def __init__(self, domain: str, sim: Simulator,
                 inter_domain_delay_s: float = 0.05,
                 min_evidence: int = 2,
                 watch_ttl_s: float = 60.0):
        if inter_domain_delay_s < 0:
            raise ValueError("inter-domain delay must be >= 0")
        if min_evidence < 1:
            raise ValueError("min_evidence must be >= 1")
        self.domain = domain
        self.sim = sim
        self.inter_domain_delay_s = inter_domain_delay_s
        self.min_evidence = min_evidence
        self.watch_ttl_s = watch_ttl_s
        self.trusted: Set[str] = set()
        self._peers: Dict[str, "FederationPeer"] = {}
        self.watchlist: Dict[int, WatchlistEntry] = {}
        self.advisories_sent: List[ThreatAdvisory] = []
        self.advisories_accepted: List[ThreatAdvisory] = []
        self.advisories_rejected: List[Tuple[ThreatAdvisory, str]] = []

    # ------------------------------------------------------------------
    # Topology of trust
    # ------------------------------------------------------------------
    def connect(self, other: "FederationPeer",
                mutual_trust: bool = True) -> None:
        """Exchange reachability (and optionally trust) with a peer."""
        self._peers[other.domain] = other
        other._peers[self.domain] = self
        if mutual_trust:
            self.trusted.add(other.domain)
            other.trusted.add(self.domain)

    def trust(self, domain: str) -> None:
        self.trusted.add(domain)

    def revoke_trust(self, domain: str) -> None:
        self.trusted.discard(domain)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(self, attack_type: str, sources: Iterable[str],
                evidence: int) -> ThreatAdvisory:
        """Advise every connected peer of an attack we confirmed."""
        advisory = ThreatAdvisory.from_sources(
            self.domain, attack_type, sources, evidence, self.sim.now)
        self.advisories_sent.append(advisory)
        for peer in self._peers.values():
            self.sim.schedule(self.inter_domain_delay_s,
                              peer._receive, advisory)
        return advisory

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _receive(self, advisory: ThreatAdvisory) -> None:
        if advisory.origin_domain not in self.trusted:
            self.advisories_rejected.append((advisory, "untrusted_origin"))
            return
        if advisory.evidence < self.min_evidence:
            self.advisories_rejected.append((advisory,
                                             "insufficient_evidence"))
            return
        self.advisories_accepted.append(advisory)
        expires = self.sim.now + self.watch_ttl_s
        for source_hash in advisory.source_hashes:
            entry = self.watchlist.get(source_hash)
            if entry is None or entry.expires_at < expires:
                self.watchlist[source_hash] = WatchlistEntry(
                    attack_type=advisory.attack_type,
                    origin_domain=advisory.origin_domain,
                    expires_at=expires)

    # ------------------------------------------------------------------
    # Consultation (called by the local domain's defenses)
    # ------------------------------------------------------------------
    def is_watched(self, source: str) -> Optional[WatchlistEntry]:
        """Does local traffic from ``source`` match an advisory?"""
        entry = self.watchlist.get(hash_source(source))
        if entry is None:
            return None
        if entry.expires_at < self.sim.now:
            del self.watchlist[hash_source(source)]
            return None
        return entry

    def expire_stale(self) -> int:
        """Drop expired watchlist entries; returns the count removed."""
        now = self.sim.now
        stale = [h for h, e in self.watchlist.items()
                 if e.expires_at < now]
        for source_hash in stale:
            del self.watchlist[source_hash]
        return len(stale)

    def __repr__(self) -> str:
        return (f"FederationPeer({self.domain!r}, "
                f"trusted={sorted(self.trusted)}, "
                f"watching={len(self.watchlist)})")


def apply_watchlist(peer: FederationPeer, fluid,
                    score: float = 0.8) -> int:
    """Mark active local flows from watched sources as suspicious.

    The receiving domain's bridge between federation intelligence and
    its own defenses: matching flows skip the local detection thresholds
    (the paper's "collaboratively detect and mitigate").  Returns the
    number of flows newly marked.
    """
    marked = 0
    now = peer.sim.now
    for flow in fluid.flows:
        if not flow.active(now) or flow.suspicious:
            continue
        if peer.is_watched(flow.src) is not None:
            flow.suspicious = True
            flow.suspicion_score = max(flow.suspicion_score, score)
            marked += 1
    return marked
