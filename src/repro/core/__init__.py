"""FastFlex core: the paper's primary contribution.

Decomposition and sharing of defense modules (analyzer), placement
(scheduler), default-mode traffic engineering, the multimode data plane
with its distributed mode-change protocol, detector synchronization,
stability guards, dynamic scaling, and FEC-protected state transfer —
orchestrated by :class:`~repro.core.controller.FastFlexController`.
"""

from .analyzer import MergedGraph, MergeReport, ProgramAnalyzer
from .booster import Booster, BoosterRegistry, GatedProgram
from .controller import (BoosterVerificationError, Deployment,
                         FastFlexController)
from .dataflow import DataflowEdge, DataflowGraph
from .equivalence import (EquivalenceClasses, equivalent, merge_parsers,
                          parser_covers)
from .federation import (FederationPeer, ThreatAdvisory,
                         WatchlistEntry, apply_watchlist, hash_source)
from .mode_protocol import (NETWORK_WIDE_SCOPE, ModeChangeAgent,
                            install_mode_agents)
from .modes import (DEFAULT_MODE, ModeChangeEvent, ModeEventBus,
                    ModeRegistry, ModeSpec, ModeTable)
from .ppm import PpmKind, PpmRole, PpmSignature, PpmSpec
from .scaling import ProgramFactory, RepurposeRecord, ScalingManager
from .scheduler import (Placement, PlacementMetrics, Scheduler,
                        SchedulerError)
from .stability import GuardStats, StabilityGuard
from .state_transfer import (CriticalStateReplicator, StateTransferAgent,
                             StateTransferService, TransferResult,
                             state_to_words, words_to_state)
from .sync import DetectorSyncAgent, SyncStats
from .verify import (BoosterVerifier, Finding, Severity,
                     VerificationReport, verify_catalog)
from .te import (TeResult, greedy_min_max_te, link_loads,
                 max_link_utilization, rebalance_excluding_links)

__all__ = [
    "Booster", "BoosterRegistry", "BoosterVerificationError",
    "BoosterVerifier", "CriticalStateReplicator", "DEFAULT_MODE",
    "Finding", "Severity", "VerificationReport", "verify_catalog",
    "DataflowEdge", "DataflowGraph", "Deployment", "DetectorSyncAgent",
    "EquivalenceClasses", "FastFlexController", "FederationPeer",
    "GatedProgram", "GuardStats", "ThreatAdvisory", "WatchlistEntry",
    "apply_watchlist", "hash_source",
    "MergeReport", "MergedGraph", "ModeChangeAgent", "ModeChangeEvent",
    "ModeEventBus", "ModeRegistry", "ModeSpec", "ModeTable",
    "NETWORK_WIDE_SCOPE", "Placement", "PlacementMetrics", "PpmKind",
    "PpmRole", "PpmSignature", "PpmSpec", "ProgramAnalyzer",
    "ProgramFactory", "RepurposeRecord", "ScalingManager", "Scheduler",
    "SchedulerError", "StabilityGuard", "StateTransferAgent",
    "StateTransferService", "SyncStats", "TeResult", "TransferResult",
    "equivalent", "greedy_min_max_te", "install_mode_agents", "link_loads",
    "max_link_utilization", "merge_parsers", "parser_covers",
    "rebalance_excluding_links", "state_to_words", "words_to_state",
]
