"""Functional equivalence of PPMs despite implementation differences.

Section 3.1 asks: "boosters may implement the same function differently,
e.g., using different variable names and code structures, so how does
FastFlex tell whether two PPMs are shareable?"  The paper's answer cites
data-plane equivalence checking [24]: switch programs are simple enough
to decide equivalence.

Our IR makes that tractable by construction: a PPM's behaviour is fully
determined by its :class:`~repro.core.ppm.PpmSignature` — semantic kind
plus canonicalized parameters, with implementation-detail parameters
(``_``-prefixed) stripped.  Two modules written by different booster
authors with different names, different internal structure, or different
cosmetic parameters therefore canonicalize to the same signature when
and only when they compute the same function on packets.

Parsers get a relaxation: a parser that extracts a *superset* of another
parser's fields can serve it, and two overlapping parsers can be merged
into their union (the analyzer exploits both).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..dataplane.parser import HeaderParser
from .ppm import PpmKind, PpmSignature, PpmSpec


def equivalent(a: PpmSpec, b: PpmSpec) -> bool:
    """True iff the two PPMs compute the same function (shareable)."""
    if a.kind != b.kind:
        return False
    if a.kind == PpmKind.PARSER:
        # Exact-field equality here; subsumption/merging is a separate,
        # directional relation handled by the analyzer.
        return _parser_fields(a) == _parser_fields(b)
    return a.signature() == b.signature()


def parser_covers(a: PpmSpec, b: PpmSpec) -> bool:
    """True iff parser ``a`` extracts every field parser ``b`` needs."""
    if a.kind != PpmKind.PARSER or b.kind != PpmKind.PARSER:
        return False
    base_a, custom_a = _parser_fields(a)
    base_b, custom_b = _parser_fields(b)
    return base_b <= base_a and custom_b <= custom_a


def merge_parsers(specs: List[PpmSpec], name: str = "") -> PpmSpec:
    """The union parser serving every spec in ``specs``."""
    if not specs:
        raise ValueError("need at least one parser spec to merge")
    for spec in specs:
        if spec.kind != PpmKind.PARSER:
            raise ValueError(f"{spec.qualified_name} is not a parser")
    base = frozenset().union(*(_parser_fields(s)[0] for s in specs))
    custom = frozenset().union(*(_parser_fields(s)[1] for s in specs))
    merged_parser = HeaderParser(
        name or "+".join(s.name for s in specs), base, custom)
    from .ppm import PpmRole
    return PpmSpec(
        # The booster prefix "shared." is added via the booster field;
        # strip any redundant prefix from the provided name.
        name=merged_parser.name.split(".")[-1],
        kind=PpmKind.PARSER,
        role=PpmRole.SUPPORT,
        requirement=merged_parser.resource_requirement(),
        params={"base_fields": tuple(sorted(base)),
                "custom_fields": tuple(sorted(custom))},
        factory=specs[0].factory,
        booster="shared",
    )


def _parser_fields(spec: PpmSpec) -> Tuple[frozenset, frozenset]:
    base = frozenset(spec.params.get("base_fields", ()))
    custom = frozenset(spec.params.get("custom_fields", ()))
    return base, custom


@dataclass
class EquivalenceClasses:
    """Partition of PPM specs into shareable groups."""

    #: signature -> member specs (order of first appearance preserved).
    groups: Dict[PpmSignature, List[PpmSpec]] = field(default_factory=dict)

    @classmethod
    def partition(cls, specs: List[PpmSpec]) -> "EquivalenceClasses":
        classes = cls()
        for spec in specs:
            classes.groups.setdefault(spec.signature(), []).append(spec)
        return classes

    def shareable(self) -> List[List[PpmSpec]]:
        """Groups with more than one member — actual sharing wins."""
        return [members for members in self.groups.values()
                if len(members) > 1]

    def representative(self, signature: PpmSignature) -> PpmSpec:
        return self.groups[signature][0]

    def savings(self):
        """Resource vector saved by installing one instance per class
        instead of one per member."""
        from ..dataplane.resources import ResourceVector
        saved = ResourceVector.zero()
        for members in self.groups.values():
            for extra in members[1:]:
                saved = saved + extra.requirement
        return saved

    def __len__(self) -> int:
        return len(self.groups)
