"""Stability guards against attacker-induced mode flapping (§6).

"We should defend against an attacker that intentionally causes mode
changes frequently."  An attacker who pulses traffic can otherwise make
the data plane thrash between modes, paying the transition cost over and
over.  The guard enforces three classic self-stabilization measures:

* **Minimum dwell** — once a mode is entered, it is held for at least
  ``min_dwell_s`` before another change for that attack type.
* **Rate limit** — at most ``max_changes`` transitions per sliding
  ``window_s`` window.
* **Flap lock** — when the rate limit trips, changes for the attack type
  are frozen for ``cooldown_s`` (the defense stays in its current —
  conservative — mode, which is safe: a defense mode held too long costs
  some path stretch, whereas flapping costs stability).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Tuple


@dataclass
class GuardStats:
    """Counters for observability and the stability ablation."""

    allowed: int = 0
    blocked_dwell: int = 0
    blocked_cooldown: int = 0
    locks_triggered: int = 0


class StabilityGuard:
    """Per-switch vetting of locally initiated mode changes."""

    def __init__(self, min_dwell_s: float = 0.5,
                 max_changes: int = 4, window_s: float = 5.0,
                 cooldown_s: float = 10.0):
        if min_dwell_s < 0 or window_s <= 0 or cooldown_s < 0:
            raise ValueError("guard intervals must be non-negative "
                             "(window strictly positive)")
        if max_changes < 1:
            raise ValueError(f"max_changes must be >= 1, got {max_changes}")
        self.min_dwell_s = min_dwell_s
        self.max_changes = max_changes
        self.window_s = window_s
        self.cooldown_s = cooldown_s
        self.stats = GuardStats()
        self._last_change: Dict[str, Tuple[float, str]] = {}
        self._history: Dict[str, Deque[float]] = {}
        self._locked_until: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def allow_change(self, attack_type: str, mode: str, now: float) -> bool:
        """Would a transition to ``mode`` be permitted right now?"""
        locked_until = self._locked_until.get(attack_type, 0.0)
        if now < locked_until:
            self.stats.blocked_cooldown += 1
            return False
        last = self._last_change.get(attack_type)
        if last is not None:
            last_time, last_mode = last
            if mode == last_mode:
                # Re-asserting the current mode is always fine (idempotent).
                return True
            if now - last_time < self.min_dwell_s:
                self.stats.blocked_dwell += 1
                return False
        return True

    def record_change(self, attack_type: str, mode: str, now: float) -> None:
        """Account an executed transition; may trip the flap lock."""
        self._last_change[attack_type] = (now, mode)
        history = self._history.setdefault(attack_type, deque())
        history.append(now)
        while history and history[0] < now - self.window_s:
            history.popleft()
        if len(history) > self.max_changes:
            self._locked_until[attack_type] = now + self.cooldown_s
            self.stats.locks_triggered += 1
            history.clear()
        self.stats.allowed += 1

    # ------------------------------------------------------------------
    def is_locked(self, attack_type: str, now: float) -> bool:
        return now < self._locked_until.get(attack_type, 0.0)

    def __repr__(self) -> str:
        return (f"StabilityGuard(dwell={self.min_dwell_s}s, "
                f"{self.max_changes}/{self.window_s}s, "
                f"cooldown={self.cooldown_s}s, stats={self.stats})")
