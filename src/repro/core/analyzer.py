"""The program analyzer: joint analysis and module sharing (Figure 1b).

Takes every booster's dataflow graph, finds functionally equivalent PPMs
across boosters (plus parsers that can be merged into one union parser),
and produces a single merged dataflow graph in which each shared function
appears once.  The merged graph is what the scheduler places onto the
network, and the resource savings from merging are the Figure 1a-b
benchmark's headline numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..dataplane.resources import ResourceVector
from .dataflow import DataflowGraph
from .equivalence import EquivalenceClasses, merge_parsers
from .ppm import PpmKind, PpmSpec


@dataclass
class MergeReport:
    """What the joint analysis found and saved."""

    total_ppms_before: int = 0
    total_ppms_after: int = 0
    shared_groups: int = 0
    requirement_before: ResourceVector = field(
        default_factory=ResourceVector.zero)
    requirement_after: ResourceVector = field(
        default_factory=ResourceVector.zero)

    @property
    def savings(self) -> ResourceVector:
        return self.requirement_before - self.requirement_after

    def module_table(self, graph: "MergedGraph") -> List[Tuple[str, float, float, float]]:
        """Rows like the paper's Figure 1 module table:
        (module, stages, SRAM MB, TCAM KB)."""
        rows = []
        for spec in graph.merged.ppms():
            req = spec.requirement
            rows.append((spec.qualified_name, req.stages, req.sram_mb,
                         req.tcam_kb))
        return sorted(rows)


@dataclass
class MergedGraph:
    """The merged dataflow graph plus provenance mapping."""

    merged: DataflowGraph
    #: original qualified PPM name -> merged node name.
    mapping: Dict[str, str] = field(default_factory=dict)
    report: MergeReport = field(default_factory=MergeReport)

    def merged_name(self, original: str) -> str:
        try:
            return self.mapping[original]
        except KeyError:
            raise KeyError(
                f"no merged node for {original!r}; known: "
                f"{sorted(self.mapping)[:10]}...") from None

    def members_of(self, merged_node: str) -> List[str]:
        return sorted(orig for orig, node in self.mapping.items()
                      if node == merged_node)


class ProgramAnalyzer:
    """Runs the joint analysis of Figure 1 steps (a) -> (b)."""

    def __init__(self, merge_all_parsers: bool = True):
        #: Real switches run a single parser; merging every booster's
        #: parser into one union parser models that.  Disable to only
        #: share exactly-equal parsers (used by the sharing ablation).
        self.merge_all_parsers = merge_all_parsers

    def merge(self, graphs: List[DataflowGraph],
              name: str = "merged") -> MergedGraph:
        if not graphs:
            raise ValueError("need at least one booster dataflow graph")
        all_specs: List[PpmSpec] = []
        for graph in graphs:
            all_specs.extend(graph.ppms())
        if not all_specs:
            raise ValueError("booster graphs contain no PPMs")

        merged = DataflowGraph(name)
        mapping: Dict[str, str] = {}

        parsers = [s for s in all_specs if s.kind == PpmKind.PARSER]
        others = [s for s in all_specs if s.kind != PpmKind.PARSER]

        if parsers:
            if self.merge_all_parsers:
                union = merge_parsers(parsers, name="shared.parser")
                merged.add_ppm(union)
                for spec in parsers:
                    mapping[spec.qualified_name] = union.qualified_name
            else:
                self._merge_equal(parsers, merged, mapping)

        self._merge_equal(others, merged, mapping)

        # Re-map edges onto merged nodes, summing weights of collapsed
        # parallel edges and dropping edges that became self-edges.
        weights: Dict[Tuple[str, str], float] = {}
        for graph in graphs:
            for edge in graph.edges():
                src = mapping[edge.src]
                dst = mapping[edge.dst]
                if src == dst:
                    continue
                weights[(src, dst)] = weights.get((src, dst), 0.0) + edge.weight
        for (src, dst), weight in sorted(weights.items()):
            merged.add_edge(src, dst, weight)

        report = MergeReport(
            total_ppms_before=len(all_specs),
            total_ppms_after=len(merged),
            shared_groups=sum(
                1 for node in {mapping[s.qualified_name] for s in all_specs}
                if sum(1 for v in mapping.values() if v == node) > 1),
            requirement_before=ResourceVector.total(
                s.requirement for s in all_specs),
            requirement_after=merged.total_requirement(),
        )
        return MergedGraph(merged=merged, mapping=mapping, report=report)

    @staticmethod
    def _merge_equal(specs: List[PpmSpec], merged: DataflowGraph,
                     mapping: Dict[str, str]) -> None:
        classes = EquivalenceClasses.partition(specs)
        for signature, members in classes.groups.items():
            representative = members[0]
            if len(members) > 1:
                # Rename the shared instance so provenance is obvious;
                # disambiguate if two shared groups carry the same name.
                shared_name = representative.name
                suffix = 1
                while f"shared.{shared_name}" in merged:
                    suffix += 1
                    shared_name = f"{representative.name}{suffix}"
                shared = PpmSpec(
                    name=shared_name, kind=representative.kind,
                    role=representative.role,
                    requirement=representative.requirement,
                    params=dict(representative.params),
                    factory=representative.factory, booster="shared")
                node = merged.add_ppm(shared)
            else:
                node = merged.add_ppm(representative)
            for member in members:
                mapping[member.qualified_name] = node.qualified_name
