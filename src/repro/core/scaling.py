"""Dynamic scaling at runtime: repurposing switches (§3.4, Figure 1d).

When attack strength exceeds the best-effort plan, FastFlex repurposes
switches to run different programs.  The sequence modeled here follows
the paper exactly:

1. The switch **notifies its neighbors** before reconfiguring so they
   fast-reroute around it (Tofino-style reinstallation takes seconds of
   downtime — footnote 1; Trident-style partial reconfiguration is
   hitless).
2. Its defense **state is snapshotted and transferred** to the switch
   taking over, as FEC-protected state-carrying packets.
3. After the reconfiguration window, the new program set is installed,
   transferred state is imported, and neighbors are told to route back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..netsim.switch import ProgrammableSwitch, SwitchProgram
from ..netsim.topology import Topology
from ..telemetry import DEFAULT_BUCKETS, metrics, trace
from .state_transfer import StateTransferService, TransferResult

#: Program factory used by scale-out: builds a fresh runtime instance.
ProgramFactory = Callable[[], SwitchProgram]

_MET = metrics()
_TRACE = trace()
_C_REPURPOSES = _MET.counter(
    "repurpose_operations_total", "switch repurposing operations started")
_C_SCALE_OUTS = _MET.counter(
    "scale_out_operations_total", "booster replications onto new switches")
_H_DOWNTIME = _MET.histogram(
    "repurpose_downtime_seconds",
    "announced reconfiguration downtime per repurposing (0 for hitless)",
    buckets=DEFAULT_BUCKETS)


@dataclass
class RepurposeRecord:
    """What one repurposing operation did (for tests and benches)."""

    switch: str
    started_at: float
    downtime_s: float
    hitless: bool
    removed: List[str] = field(default_factory=list)
    installed: List[str] = field(default_factory=list)
    state_transfer_id: Optional[int] = None
    state_transfer_ok: Optional[bool] = None
    completed_at: Optional[float] = None


class ScalingManager:
    """Orchestrates runtime repurposing and booster scale-out."""

    def __init__(self, topo: Topology, state_service: StateTransferService,
                 reconfig_seconds: float = 2.0,
                 notify_grace_s: float = 0.01):
        if reconfig_seconds < 0 or notify_grace_s < 0:
            raise ValueError("durations must be non-negative")
        self.topo = topo
        self.sim = topo.sim
        self.state_service = state_service
        #: Tofino-style program reinstallation latency ("several seconds",
        #: footnote 1); the repurposing ablation sweeps this.
        self.reconfig_seconds = reconfig_seconds
        #: Delay between the neighbor notification and going down, giving
        #: the notices time to arrive so fast reroute is armed.
        self.notify_grace_s = notify_grace_s
        self.records: List[RepurposeRecord] = []

    # ------------------------------------------------------------------
    def repurpose(self, switch_name: str,
                  remove: Optional[List[str]] = None,
                  install: Optional[List[ProgramFactory]] = None,
                  transfer_state_to: Optional[str] = None,
                  hitless: bool = False,
                  on_complete: Optional[Callable[[RepurposeRecord], None]] = None
                  ) -> RepurposeRecord:
        """Swap the program set on a switch.

        ``remove`` names programs to uninstall (their state is shipped to
        ``transfer_state_to`` if given); ``install`` supplies factories
        for the replacement programs, installed once the reconfiguration
        window closes.
        """
        switch = self.topo.switch(switch_name)
        if switch.reconfiguring:
            raise RuntimeError(f"{switch_name} is already reconfiguring")
        record = RepurposeRecord(
            switch=switch_name, started_at=self.sim.now,
            downtime_s=0.0 if hitless else self.reconfig_seconds,
            hitless=hitless,
            removed=list(remove or []))
        self.records.append(record)
        _C_REPURPOSES.inc()
        _H_DOWNTIME.observe(record.downtime_s)
        if _TRACE.enabled:
            _TRACE.emit("repurpose_start", sim_time=self.sim.now,
                        switch=switch_name, hitless=hitless,
                        downtime_s=record.downtime_s,
                        removed=record.removed)

        switch.notify_neighbors_of_reconfig()
        self.sim.schedule(self.notify_grace_s, self._begin, switch, record,
                          remove or [], install or [], transfer_state_to,
                          hitless, on_complete)
        return record

    def _begin(self, switch: ProgrammableSwitch, record: RepurposeRecord,
               remove: List[str], install: List[ProgramFactory],
               transfer_state_to: Optional[str], hitless: bool,
               on_complete: Optional[Callable[[RepurposeRecord], None]]
               ) -> None:
        # Snapshot and ship outbound state before the programs vanish.
        if transfer_state_to is not None and remove:
            snapshot = {}
            for name in remove:
                if switch.has_program(name):
                    snapshot[name] = switch.get_program(name).export_state()
            if snapshot:
                def note(result: TransferResult) -> None:
                    record.state_transfer_ok = result.success

                record.state_transfer_id = self.state_service.send(
                    switch.name, transfer_state_to, snapshot,
                    on_complete=note)
        for name in remove:
            if switch.has_program(name):
                switch.remove_program(name)

        def finish() -> None:
            for factory in install:
                program = factory()
                switch.install_program(program)
                record.installed.append(program.name)
            record.completed_at = self.sim.now
            if _TRACE.enabled:
                _TRACE.emit(
                    "repurpose_complete", sim_time=self.sim.now,
                    switch=record.switch,
                    elapsed_s=self.sim.now - record.started_at,
                    installed=record.installed,
                    state_transfer_ok=record.state_transfer_ok)
            if on_complete is not None:
                on_complete(record)

        switch.begin_reconfiguration(
            0.0 if hitless else self.reconfig_seconds,
            hitless=hitless, on_complete=finish)

    # ------------------------------------------------------------------
    def scale_out(self, program_name: str, from_switch: str,
                  to_switch: str, factory: ProgramFactory,
                  copy_state: bool = True,
                  on_ready: Optional[Callable[[bool], None]] = None) -> None:
        """Replicate a booster instance onto another switch (Fig. 1d's
        "Replicated E"): install a fresh instance there and, optionally,
        seed it with the source instance's state."""
        source = self.topo.switch(from_switch)
        target = self.topo.switch(to_switch)
        program = factory()
        target.install_program(program)
        _C_SCALE_OUTS.inc()
        if _TRACE.enabled:
            _TRACE.emit("scale_out", sim_time=self.sim.now,
                        program=program_name, source=from_switch,
                        target=to_switch, copy_state=copy_state)

        if not copy_state:
            if on_ready is not None:
                on_ready(True)
            return
        if not source.has_program(program_name):
            raise KeyError(
                f"{from_switch} has no program {program_name!r} to copy")
        state = source.get_program(program_name).export_state()

        def seed(result: TransferResult) -> None:
            ok = result.success
            if ok:
                program.import_state(result.payload["state"])
            if on_ready is not None:
                on_ready(ok)

        self.state_service.send(from_switch, to_switch,
                                {"program": program_name, "state": state},
                                on_complete=seed)

    def instances_of(self, program_name: str) -> List[str]:
        """Switches currently running the named program."""
        return [name for name in self.topo.switch_names
                if self.topo.switch(name).has_program(program_name)]
