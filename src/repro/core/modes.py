"""The multimode data plane abstraction (Figure 2).

The paper's key abstraction: each switch is in *modes* — DEFAULT
normally, attack-specific defense modes upon detection.  Modes are scoped
per *attack type*, so mixed-vector attacks activate co-existing modes
("different modes at different regions of the network"), each with its
own epoch counter for ordering distributed updates.

A :class:`ModeSpec` names which boosters a mode turns on; a
:class:`ModeTable` is the per-switch runtime state; booster programs gate
themselves on ``table.booster_enabled(...)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

#: The quiescent mode every attack type rests in.
DEFAULT_MODE = "default"


@dataclass(frozen=True)
class ModeSpec:
    """A named defense mode: which boosters it enables."""

    name: str
    attack_type: str
    boosters_on: FrozenSet[str]
    #: Higher-priority modes win if two modes of one attack type race
    #: with equal epochs (deterministic tie break).
    priority: int = 0

    @classmethod
    def of(cls, name: str, attack_type: str,
           boosters_on: Iterable[str], priority: int = 0) -> "ModeSpec":
        return cls(name, attack_type, frozenset(boosters_on), priority)


class ModeRegistry:
    """All modes known to a deployment, keyed by (attack_type, name)."""

    def __init__(self) -> None:
        self._modes: Dict[Tuple[str, str], ModeSpec] = {}
        #: Boosters always on regardless of mode (e.g. detectors in the
        #: default mode — Figure 2a: "only LFA detectors are turned on").
        self.always_on: Set[str] = set()

    def register(self, spec: ModeSpec) -> ModeSpec:
        key = (spec.attack_type, spec.name)
        if key in self._modes:
            raise ValueError(f"mode {spec.name!r} for attack type "
                             f"{spec.attack_type!r} already registered")
        if spec.name == DEFAULT_MODE:
            raise ValueError(f"{DEFAULT_MODE!r} is implicit; do not register it")
        self._modes[key] = spec
        return spec

    def get(self, attack_type: str, name: str) -> ModeSpec:
        if name == DEFAULT_MODE:
            return ModeSpec.of(DEFAULT_MODE, attack_type, ())
        try:
            return self._modes[(attack_type, name)]
        except KeyError:
            raise KeyError(
                f"unknown mode {name!r} for attack type {attack_type!r}; "
                f"known: {sorted(self._modes)}") from None

    def attack_types(self) -> List[str]:
        return sorted({attack for (attack, _) in self._modes})

    def modes_for(self, attack_type: str) -> List[ModeSpec]:
        return sorted((spec for (attack, _), spec in self._modes.items()
                       if attack == attack_type),
                      key=lambda s: (s.priority, s.name))


#: Listener signature: (attack_type, old_mode, new_mode, epoch).
ModeListener = Callable[[str, str, str, int], None]


class ModeTable:
    """Per-switch mode state with epoch-ordered updates.

    Epochs make the distributed protocol idempotent and monotone: an
    update applies iff its epoch exceeds the locally known epoch for
    that attack type (ties broken by mode priority, then name, so all
    switches converge on identical state from identical message sets).
    """

    def __init__(self, registry: ModeRegistry):
        self.registry = registry
        self._current: Dict[str, str] = {}   # attack_type -> mode name
        self._epochs: Dict[str, int] = {}    # attack_type -> epoch
        self._listeners: List[ModeListener] = []
        self.changes_applied = 0

    # ------------------------------------------------------------------
    def on_change(self, listener: ModeListener) -> None:
        self._listeners.append(listener)

    def mode_for(self, attack_type: str) -> str:
        return self._current.get(attack_type, DEFAULT_MODE)

    def epoch_for(self, attack_type: str) -> int:
        return self._epochs.get(attack_type, 0)

    def next_epoch(self, attack_type: str) -> int:
        return self.epoch_for(attack_type) + 1

    def active_modes(self) -> Dict[str, str]:
        """Non-default modes per attack type (co-existing modes)."""
        return {attack: mode for attack, mode in self._current.items()
                if mode != DEFAULT_MODE}

    def booster_enabled(self, booster: str) -> bool:
        """Is any active mode (or the always-on set) enabling the booster?"""
        if booster in self.registry.always_on:
            return True
        for attack_type, mode_name in self._current.items():
            if mode_name == DEFAULT_MODE:
                continue
            spec = self.registry.get(attack_type, mode_name)
            if booster in spec.boosters_on:
                return True
        return False

    # ------------------------------------------------------------------
    def apply(self, attack_type: str, mode_name: str, epoch: int) -> bool:
        """Apply an update if it is newer; returns True when state changed.

        Equal epochs resolve deterministically by (priority, name) of the
        candidate vs. current mode, so concurrent same-epoch updates
        converge identically everywhere.
        """
        self.registry.get(attack_type, mode_name)  # validate
        current_epoch = self.epoch_for(attack_type)
        if epoch < current_epoch:
            return False
        if epoch == current_epoch:
            current = self.mode_for(attack_type)
            if current == mode_name:
                return False
            current_rank = self._rank(attack_type, current)
            candidate_rank = self._rank(attack_type, mode_name)
            if candidate_rank <= current_rank:
                return False
        old = self.mode_for(attack_type)
        self._current[attack_type] = mode_name
        self._epochs[attack_type] = epoch
        self.changes_applied += 1
        for listener in self._listeners:
            listener(attack_type, old, mode_name, epoch)
        return True

    def _rank(self, attack_type: str, mode_name: str) -> Tuple[int, str]:
        if mode_name == DEFAULT_MODE:
            return (-1, DEFAULT_MODE)
        spec = self.registry.get(attack_type, mode_name)
        return (spec.priority, spec.name)

    def __repr__(self) -> str:
        return f"ModeTable({self._current}, epochs={self._epochs})"


@dataclass
class ModeChangeEvent:
    """One observed mode change somewhere in the network."""

    time: float
    switch: str
    attack_type: str
    old_mode: str
    new_mode: str
    epoch: int


class ModeEventBus:
    """Network-wide observer of mode changes (for runtimes and tests)."""

    def __init__(self) -> None:
        self.events: List[ModeChangeEvent] = []
        self._listeners: List[Callable[[ModeChangeEvent], None]] = []

    def subscribe(self, listener: Callable[[ModeChangeEvent], None]) -> None:
        self._listeners.append(listener)

    def publish(self, event: ModeChangeEvent) -> None:
        self.events.append(event)
        for listener in self._listeners:
            listener(event)

    def switches_in_mode(self, attack_type: str, mode: str) -> Set[str]:
        """Switches whose *latest* event for the attack type is ``mode``."""
        latest: Dict[str, ModeChangeEvent] = {}
        for event in self.events:
            if event.attack_type == attack_type:
                latest[event.switch] = event
        return {sw for sw, ev in latest.items() if ev.new_mode == mode}

    def first_activation(self, attack_type: str,
                         mode: str) -> Optional[ModeChangeEvent]:
        for event in self.events:
            if event.attack_type == attack_type and event.new_mode == mode:
                return event
        return None
