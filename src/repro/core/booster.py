"""The booster abstraction: a defense app on the FastFlex platform.

A :class:`Booster` contributes (1) a declarative dataflow graph of PPMs
for the analyzer/scheduler, (2) the modes it participates in, and (3)
runtime wiring once deployed.  Its runtime switch programs subclass
:class:`GatedProgram`, which consults the switch's local mode table on
every packet — the mechanism by which distributed mode changes turn
defenses on and off without touching the installed program set.
"""

from __future__ import annotations

import abc
from typing import Dict, List, TYPE_CHECKING

from ..netsim.packet import Packet
from ..netsim.switch import ProgrammableSwitch, ProgramResult, SwitchProgram
from ..dataplane.resources import ResourceVector
from .dataflow import DataflowGraph
from .modes import ModeSpec

if TYPE_CHECKING:  # pragma: no cover
    from .controller import Deployment


class Booster(abc.ABC):
    """Base class for defense apps."""

    #: Unique booster name; also the gating key in :class:`ModeSpec`.
    name: str = ""
    #: Attack types this booster helps against (mode scoping keys).
    attack_types: tuple = ()

    @abc.abstractmethod
    def dataflow(self) -> DataflowGraph:
        """The booster's PPM dataflow graph (Figure 1a input)."""

    def modes(self) -> List[ModeSpec]:
        """Modes this booster defines or participates in."""
        return []

    def always_on(self) -> bool:
        """True for boosters active even in the default mode (Figure 2a
        keeps LFA detectors on while everything else is off)."""
        return False

    def on_deployed(self, deployment: "Deployment") -> None:
        """Post-install hook for cross-switch runtime wiring."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class GatedProgram(SwitchProgram):
    """A switch program that only acts while its booster's mode is on.

    The gate reads the local :class:`~repro.core.modes.ModeTable` owned
    by the switch's mode agent.  Without a mode agent installed the
    program treats itself as enabled (standalone/unit-test use).
    """

    MODE_AGENT_NAME = "fastflex.mode_agent"

    def __init__(self, booster_name: str, name: str,
                 requirement: ResourceVector = ResourceVector.zero()):
        super().__init__(name, requirement)
        self.booster_name = booster_name

    def enabled_on(self, switch: ProgrammableSwitch) -> bool:
        if not switch.has_program(self.MODE_AGENT_NAME):
            return True
        agent = switch.get_program(self.MODE_AGENT_NAME)
        return agent.mode_table.booster_enabled(self.booster_name)

    def process(self, switch: ProgrammableSwitch,
                packet: Packet) -> ProgramResult:
        if not self.enabled_on(switch):
            return None
        return self.process_enabled(switch, packet)

    def process_enabled(self, switch: ProgrammableSwitch,
                        packet: Packet) -> ProgramResult:
        """Packet handler invoked only while the booster is active."""
        raise NotImplementedError

    def process_batch(self, switch: ProgrammableSwitch, batch) -> None:
        """Batch-path gate: one mode-table check per window (mode changes
        land between windows, never mid-batch), then the vectorized
        kernel.  Only meaningful on subclasses with ``supports_batch``."""
        if not self.enabled_on(switch):
            return
        self.process_batch_enabled(switch, batch)

    def process_batch_enabled(self, switch: ProgrammableSwitch,
                              batch) -> None:
        """Vectorized handler invoked only while the booster is active."""
        raise NotImplementedError


class BoosterRegistry:
    """The set of boosters a deployment runs."""

    def __init__(self) -> None:
        self._boosters: Dict[str, Booster] = {}

    def register(self, booster: Booster) -> Booster:
        if not booster.name:
            raise ValueError(f"{booster!r} has no name")
        if booster.name in self._boosters:
            raise ValueError(f"booster {booster.name!r} already registered")
        self._boosters[booster.name] = booster
        return booster

    def get(self, name: str) -> Booster:
        try:
            return self._boosters[name]
        except KeyError:
            raise KeyError(f"no booster named {name!r}; registered: "
                           f"{sorted(self._boosters)}") from None

    def all(self) -> List[Booster]:
        return [self._boosters[name] for name in sorted(self._boosters)]

    def __len__(self) -> int:
        return len(self._boosters)

    def __contains__(self, name: str) -> bool:
        return name in self._boosters
