"""State transfer and replication across switches (§3.4).

When a switch is repurposed, its defense state (sketches, flow tables,
epoch registers) must move to whichever switch takes over — at data-plane
speeds, without a software controller on the path (the paper cites Swing
State's piggybacking [53]).  We model the transfer as STATE_TRANSFER
packets that traverse the same links as data traffic, and therefore share
their congestion loss — which is precisely why the paper calls for FEC
protection of state-carrying packets.

Pipeline: ``state dict -> pickle -> 32-bit words -> XOR-parity FEC
symbols -> packets (a few symbols each) -> receiver agent -> decode ->
import``.  The service reports whether the state survived and how many
words the FEC recovered, which the state-transfer ablation sweeps
against link loss.
"""

from __future__ import annotations

import itertools
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..dataplane.fec import FecDecoder, FecEncoder, FecSymbol
from ..dataplane.resources import ResourceVector
from ..netsim.packet import Packet, PacketKind, Protocol
from ..netsim.switch import Consume, ProgrammableSwitch, ProgramResult, SwitchProgram
from ..netsim.topology import Topology
from ..telemetry import metrics, trace

AGENT_REQUIREMENT = ResourceVector(stages=1, sram_mb=0.2, tcam_kb=0, alus=2)

_transfer_ids = itertools.count(1)

_MET = metrics()
_TRACE = trace()
_C_TRANSFERS = _MET.counter(
    "state_transfers_total", "completed state transfers by outcome",
    labelnames=("outcome",))
_C_FEC_RECOVERED = _MET.counter(
    "state_transfer_fec_recovered_words_total",
    "32-bit state words reconstructed by FEC parity")
_C_WORDS_LOST = _MET.counter(
    "state_transfer_words_lost_total",
    "state words unrecoverable even after FEC decode")


def state_to_words(state: Any) -> List[int]:
    """Serialize arbitrary state into 32-bit words."""
    blob = pickle.dumps(state)
    padded = blob + b"\x00" * (-len(blob) % 4)
    return [int.from_bytes(padded[i:i + 4], "big")
            for i in range(0, len(padded), 4)]


def words_to_state(words: List[int], blob_length: int) -> Any:
    """Inverse of :func:`state_to_words`."""
    raw = b"".join(word.to_bytes(4, "big") for word in words)
    return pickle.loads(raw[:blob_length])


@dataclass
class TransferResult:
    """Outcome reported to the transfer's completion callback."""

    transfer_id: int
    success: bool
    payload: Any = None
    words_total: int = 0
    words_lost: int = 0
    recovered_by_fec: int = 0
    packets_sent: int = 0
    packets_received: int = 0
    completed_at: float = 0.0


@dataclass
class _PendingTransfer:
    meta: Dict[str, Any]
    symbols: List[FecSymbol] = field(default_factory=list)
    packets_received: int = 0
    done: bool = False
    callback: Optional[Callable[[TransferResult], None]] = None


class StateTransferAgent(SwitchProgram):
    """Receiver endpoint: collects symbols, decodes, delivers."""

    def __init__(self, service: "StateTransferService",
                 name: str = "fastflex.state_agent"):
        super().__init__(name, AGENT_REQUIREMENT)
        self.service = service
        self._pending: Dict[int, _PendingTransfer] = {}

    def process(self, switch: ProgrammableSwitch,
                packet: Packet) -> ProgramResult:
        if packet.kind != PacketKind.STATE_TRANSFER:
            return None
        if packet.dst != switch.name:
            return None  # transit; forward along switch routes
        transfer_id = packet.headers["transfer_id"]
        pending = self._pending.get(transfer_id)
        if pending is None:
            pending = _PendingTransfer(meta=dict(packet.headers))
            pending.callback = self.service.callback_for(transfer_id)
            self._pending[transfer_id] = pending
            deadline = packet.headers["deadline_s"]
            switch.sim.schedule(deadline, self._finish, transfer_id)
        if pending.done:
            return Consume()
        pending.packets_received += 1
        for group, index, value in packet.headers["symbols"]:
            pending.symbols.append(FecSymbol(group, index, value))
        if pending.packets_received >= packet.headers["total_packets"]:
            self._finish(transfer_id)
        return Consume()

    # ------------------------------------------------------------------
    def _finish(self, transfer_id: int) -> None:
        pending = self._pending.get(transfer_id)
        if pending is None or pending.done:
            return
        pending.done = True
        meta = pending.meta
        decoder = FecDecoder(group_size=meta["group_size"])
        n_words = meta["n_words"]
        words, recovered = decoder.decode(pending.symbols, n_words)
        lost = sum(1 for w in words if w is None)
        result = TransferResult(
            transfer_id=transfer_id,
            success=lost == 0,
            words_total=n_words,
            words_lost=lost,
            recovered_by_fec=recovered,
            packets_sent=meta["total_packets"],
            packets_received=pending.packets_received,
            completed_at=self.switch.sim.now if self.switch else 0.0,
        )
        if result.success:
            result.payload = words_to_state(
                [w for w in words if w is not None], meta["blob_length"])
        _C_TRANSFERS.labels("success" if result.success else "failed").inc()
        _C_FEC_RECOVERED.inc(recovered)
        _C_WORDS_LOST.inc(lost)
        if _TRACE.enabled:
            _TRACE.emit(
                "state_transfer", sim_time=result.completed_at,
                transfer_id=transfer_id, success=result.success,
                words_total=n_words, words_lost=lost,
                recovered_by_fec=recovered,
                packets_received=pending.packets_received,
                packets_sent=meta["total_packets"])
        if pending.callback is not None:
            pending.callback(result)
        self.service.record_result(result)


class StateTransferService:
    """Network-wide transfer machinery: install agents, send snapshots.

    Parameters
    ----------
    group_size:
        FEC group size: every ``group_size`` data words get one parity
        word (overhead ``1/group_size``); any single loss per group is
        recoverable.  ``None`` disables FEC (the ablation baseline).
    symbols_per_packet:
        How many 32-bit symbols ride in one state-carrying packet.
    deadline_s:
        Receiver-side decode deadline after the first packet arrives.
    """

    def __init__(self, topo: Topology, group_size: Optional[int] = 4,
                 symbols_per_packet: int = 16, deadline_s: float = 0.5):
        if symbols_per_packet < 1:
            raise ValueError("symbols_per_packet must be >= 1")
        self.topo = topo
        self.group_size = group_size
        self.symbols_per_packet = symbols_per_packet
        self.deadline_s = deadline_s
        self.results: List[TransferResult] = []
        self._callbacks: Dict[int, Callable[[TransferResult], None]] = {}
        self.agents: Dict[str, StateTransferAgent] = {}

    # ------------------------------------------------------------------
    def install_agents(self) -> None:
        """Put a receiver agent on every programmable switch lacking one
        (legacy switches forward state-carrying packets but cannot
        terminate transfers)."""
        for name in self.topo.switch_names:
            switch = self.topo.switch(name)
            if not switch.programmable:
                continue
            if not switch.has_program("fastflex.state_agent"):
                agent = StateTransferAgent(self)
                switch.install_program(agent)
                self.agents[name] = agent

    def callback_for(self, transfer_id: int
                     ) -> Optional[Callable[[TransferResult], None]]:
        return self._callbacks.get(transfer_id)

    def record_result(self, result: TransferResult) -> None:
        self.results.append(result)

    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, payload: Any,
             on_complete: Optional[Callable[[TransferResult], None]] = None
             ) -> int:
        """Ship ``payload`` from switch ``src`` to switch ``dst``.

        Returns the transfer id; ``on_complete`` fires at the receiver
        with the :class:`TransferResult`.
        """
        source = self.topo.switch(src)
        self.topo.switch(dst)  # validate destination exists
        transfer_id = next(_transfer_ids)
        if on_complete is not None:
            self._callbacks[transfer_id] = on_complete

        blob = pickle.dumps(payload)
        words = state_to_words(payload)
        if self.group_size is not None:
            symbols = FecEncoder(self.group_size).encode(words)
            group_size = self.group_size
        else:
            # No FEC: data symbols only; group size 1 lets the decoder
            # place them, but no parity symbols exist to recover with.
            symbols = [FecSymbol(i, 0, w) for i, w in enumerate(words)]
            group_size = 1

        batches = [symbols[i:i + self.symbols_per_packet]
                   for i in range(0, len(symbols), self.symbols_per_packet)]
        total = max(len(batches), 1)
        for seq, batch in enumerate(batches or [[]]):
            packet = Packet(
                src=src, dst=dst, size_bytes=64 + 4 * len(batch),
                kind=PacketKind.STATE_TRANSFER, proto=Protocol.UDP,
                headers={
                    "transfer_id": transfer_id,
                    "seq": seq,
                    "total_packets": total,
                    "n_words": len(words),
                    "blob_length": len(blob),
                    "group_size": group_size,
                    "deadline_s": self.deadline_s,
                    "symbols": [(s.group, s.index, s.value) for s in batch],
                },
            )
            packet.created_at = source.sim.now
            next_hop = source._resolve_next_hop(packet)
            if next_hop is not None:
                source.send_via(next_hop, packet)
        return transfer_id


class CriticalStateReplicator:
    """Periodic replication of critical program state (§3.4 fault
    tolerance): snapshots chosen programs on a primary switch and ships
    them to a replica, which stores them for post-failure restoration."""

    def __init__(self, service: StateTransferService, primary: str,
                 replica: str, program_names: List[str],
                 period_s: float = 1.0):
        if period_s <= 0:
            raise ValueError("replication period must be positive")
        self.service = service
        self.topo = service.topo
        self.primary = primary
        self.replica = replica
        self.program_names = list(program_names)
        self.period_s = period_s
        self.snapshots_sent = 0
        self._process = None

    def start(self) -> "CriticalStateReplicator":
        sim = self.topo.sim
        self._process = sim.every(self.period_s, self.replicate_once,
                                  start=self.period_s)
        return self

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    def replicate_once(self) -> None:
        primary = self.topo.switch(self.primary)
        if primary.reconfiguring:
            return
        snapshot = {}
        for name in self.program_names:
            if primary.has_program(name):
                snapshot[name] = primary.get_program(name).export_state()
        if not snapshot:
            return
        self.snapshots_sent += 1

        def store(result: TransferResult) -> None:
            if result.success:
                replica_switch = self.topo.switch(self.replica)
                stored = replica_switch.scratch.setdefault("replica_store", {})
                stored[self.primary] = {
                    "time": result.completed_at,
                    "snapshot": result.payload,
                }

        self.service.send(self.primary, self.replica, snapshot,
                          on_complete=store)

    def restore_to(self, target: str) -> bool:
        """Install the replica's latest snapshot onto ``target``'s
        programs (after the primary failed or was repurposed)."""
        replica_switch = self.topo.switch(self.replica)
        stored = replica_switch.scratch.get("replica_store", {})
        record = stored.get(self.primary)
        if record is None:
            return False
        target_switch = self.topo.switch(target)
        for name, state in record["snapshot"].items():
            if target_switch.has_program(name):
                target_switch.get_program(name).import_state(state)
        return True
