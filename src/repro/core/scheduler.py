"""The scheduler: mapping the merged PPM graph onto the network (Fig. 1c).

Implements Section 3.2's placement strategy:

* **Pervasive detection** — detection PPMs are distributed as widely as
  resources allow, and at minimum onto a set of switches covering every
  traffic path (they must inspect traffic to trigger mode changes).
* **Mitigation downstream** — mitigation PPMs are placed on or
  immediately downstream of each detector, so an attack flagged at a
  detector is mitigated without detour.
* **Support co-location** — parsers and shared state go wherever a
  dependent module lands.
* **Vector bin packing** — all of the above subject to each switch's
  multi-dimensional resource budget (Section 3.1), checked through the
  same :class:`~repro.dataplane.resources.ResourceLedger` the switches
  enforce at install time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from ..dataplane.resources import ResourceLedger, ResourceVector
from ..netsim.routing import Path
from ..netsim.topology import Topology
from .analyzer import MergedGraph
from .ppm import PpmRole, PpmSpec


@dataclass
class PlacementMetrics:
    """Quality measures for a computed placement."""

    detector_switch_count: int = 0
    path_coverage: float = 0.0          # fraction of paths with a detector
    mitigation_colocated: int = 0       # mitigators on their detector switch
    mitigation_downstream: int = 0      # mitigators pushed one hop down
    mitigation_detoured: int = 0        # mitigators placed off-path
    switch_utilization: Dict[str, Dict[str, float]] = field(
        default_factory=dict)

    @property
    def fully_covered(self) -> bool:
        return self.path_coverage >= 1.0


@dataclass
class Placement:
    """Which merged-graph PPMs run on which switches."""

    #: switch name -> PPM specs assigned there.
    assignments: Dict[str, List[PpmSpec]] = field(default_factory=dict)
    metrics: PlacementMetrics = field(default_factory=PlacementMetrics)
    feasible: bool = True
    infeasibility_reasons: List[str] = field(default_factory=list)

    def switches_hosting(self, ppm_name: str) -> List[str]:
        return sorted(sw for sw, specs in self.assignments.items()
                      if any(s.qualified_name == ppm_name for s in specs))

    def ppms_on(self, switch: str) -> List[PpmSpec]:
        return list(self.assignments.get(switch, []))

    def instance_count(self, ppm_name: str) -> int:
        return len(self.switches_hosting(ppm_name))


class SchedulerError(RuntimeError):
    """Raised when no feasible placement exists for required modules."""


class Scheduler:
    """Places a merged dataflow graph onto a topology.

    Parameters
    ----------
    pervasive_detection:
        When True, detection PPMs go on *every* switch with room (the
        paper's ideal); when False, only on a minimal path cover (used by
        resource-constrained deployments and the placement ablation).
    """

    def __init__(self, pervasive_detection: bool = True):
        self.pervasive_detection = pervasive_detection

    # ------------------------------------------------------------------
    def place(self, merged: MergedGraph, topo: Topology,
              paths: Sequence[Path]) -> Placement:
        """Compute a placement for the merged graph over the given
        traffic paths (the stable-matrix TE paths of the default mode)."""
        specs = merged.merged.ppms()
        detection = [s for s in specs if s.role == PpmRole.DETECTION]
        mitigation = [s for s in specs if s.role == PpmRole.MITIGATION]
        support = [s for s in specs if s.role == PpmRole.SUPPORT]

        placement = Placement()
        ledgers = {name: ResourceLedger(topo.switch(name).ledger.free)
                   for name in topo.switch_names}
        switch_paths = self._paths_per_switch(topo, paths)

        detector_switches = self._place_detection(
            detection, placement, ledgers, switch_paths, paths)
        self._place_mitigation(
            mitigation, placement, ledgers, detector_switches, topo, paths)
        self._place_support(support, merged, placement, ledgers)
        if self.pervasive_detection:
            # Only after everything has its minimum viable placement is
            # leftover capacity spent widening coverage: detection first
            # (the "ideally on all paths" goal), then mitigation (so
            # defenses like probe-based rerouting run on every hop and
            # attacks are mitigated without detour).
            self._pervasive_fill(detection + mitigation, support, merged,
                                 placement, ledgers)

        detector_switches = sorted(
            switch for switch, assigned in placement.assignments.items()
            if any(s.role == PpmRole.DETECTION for s in assigned))
        self._finalize_metrics(placement, detector_switches,
                               switch_paths, paths, ledgers, topo)
        return placement

    # ------------------------------------------------------------------
    @staticmethod
    def _paths_per_switch(topo: Topology,
                          paths: Sequence[Path]) -> Dict[str, Set[int]]:
        """Which path indices each switch sits on."""
        result: Dict[str, Set[int]] = {name: set()
                                       for name in topo.switch_names}
        for index, path in enumerate(paths):
            for node in path.nodes:
                if node in result:
                    result[node].add(index)
        return result

    def _try_assign(self, spec: PpmSpec, switch: str,
                    placement: Placement,
                    ledgers: Dict[str, ResourceLedger]) -> bool:
        """Allocate one PPM on one switch if it fits (idempotent)."""
        assigned = placement.assignments.setdefault(switch, [])
        if any(s.qualified_name == spec.qualified_name for s in assigned):
            return True
        if not ledgers[switch].can_allocate(spec.requirement):
            return False
        ledgers[switch].allocate(spec.qualified_name, spec.requirement)
        assigned.append(spec)
        return True

    def _place_detection(self, detection: List[PpmSpec],
                         placement: Placement,
                         ledgers: Dict[str, ResourceLedger],
                         switch_paths: Dict[str, Set[int]],
                         paths: Sequence[Path]) -> List[str]:
        """Per detection PPM: greedy path cover (minimum viable placement).

        Each detection module independently needs eyes on every path;
        packing them individually (largest first) lets an oversubscribed
        catalog spread across switches instead of failing as one bundle.
        """
        ordered = sorted(
            detection,
            key=lambda s: (-s.requirement.dominating_fraction(
                ResourceVector.total(l.budget for l in ledgers.values())
                .scaled(1.0 / max(len(ledgers), 1))),
                s.qualified_name))
        detector_switches: Set[str] = set()
        for spec in ordered:
            detector_switches |= self._cover_paths(
                spec, placement, ledgers, switch_paths, paths)
        return sorted(detector_switches)

    def _pervasive_fill(self, specs: List[PpmSpec],
                        support: List[PpmSpec], merged: MergedGraph,
                        placement: Placement,
                        ledgers: Dict[str, ResourceLedger]) -> None:
        """Spend leftover capacity replicating modules widely.

        A module is only added to a switch if its support dependencies
        (e.g. the shared parser) also fit there; otherwise the tentative
        allocation is rolled back.  ``specs`` arrives priority-ordered
        (detection before mitigation) and the fill preserves that order.
        """
        support_by_name = {s.qualified_name: s for s in support}
        for spec in specs:
            # Sorted: dependency order drives _try_assign attempts, so a
            # hash-randomized set union here would make placements
            # differ between processes.
            deps = [support_by_name[n]
                    for n in sorted(
                        set(merged.merged.predecessors(
                            spec.qualified_name))
                        | set(merged.merged.successors(spec.qualified_name)))
                    if n in support_by_name]
            for switch in sorted(ledgers):
                assigned_names = {s.qualified_name
                                  for s in placement.assignments.get(switch,
                                                                     [])}
                if spec.qualified_name in assigned_names:
                    continue
                if not self._try_assign(spec, switch, placement, ledgers):
                    continue
                ok = True
                for dep in deps:
                    if not self._try_assign(dep, switch, placement, ledgers):
                        ok = False
                        break
                if not ok:
                    # Roll back the module; this switch has no room for
                    # its support chain.
                    ledgers[switch].release(spec.qualified_name)
                    placement.assignments[switch] = [
                        s for s in placement.assignments[switch]
                        if s.qualified_name != spec.qualified_name]

    def _cover_paths(self, spec: PpmSpec, placement: Placement,
                     ledgers: Dict[str, ResourceLedger],
                     switch_paths: Dict[str, Set[int]],
                     paths: Sequence[Path]) -> Set[str]:
        """Greedy max-coverage set cover for one PPM."""
        uncovered: Set[int] = set(range(len(paths)))
        hosts: Set[str] = set()
        rejected: Set[str] = set()
        while uncovered:
            candidates = [sw for sw in switch_paths
                          if sw not in hosts and sw not in rejected
                          and switch_paths[sw] & uncovered]
            if not candidates:
                break

            def preference(sw: str):
                # Max coverage first; among ties, the emptiest switch
                # (load-balances big modules across the path cover).
                used = max(ledgers[sw].utilization().values(), default=0.0)
                return (len(switch_paths[sw] & uncovered), -used, sw)

            best = max(candidates, key=preference)
            if self._try_assign(spec, best, placement, ledgers):
                hosts.add(best)
                uncovered -= switch_paths[best]
            else:
                rejected.add(best)
        if uncovered:
            placement.feasible = False
            placement.infeasibility_reasons.append(
                f"{spec.qualified_name}: {len(uncovered)} paths uncovered "
                f"(insufficient switch resources)")
        return hosts

    def _place_mitigation(self, mitigation: List[PpmSpec],
                          placement: Placement,
                          ledgers: Dict[str, ResourceLedger],
                          detector_switches: List[str],
                          topo: Topology,
                          paths: Sequence[Path]) -> None:
        """Each mitigation PPM goes on (or one hop downstream of) the
        switches hosting its booster's detection modules."""
        if not mitigation:
            return
        downstream = self._downstream_neighbors(topo, paths)

        def detection_hosts_for(booster: str) -> List[str]:
            hosts = []
            for switch, assigned in placement.assignments.items():
                for spec in assigned:
                    if (spec.role == PpmRole.DETECTION
                            and (spec.booster == booster
                                 or booster == "shared")):
                        hosts.append(switch)
                        break
            return sorted(hosts) or list(detector_switches)

        for spec in sorted(mitigation, key=lambda s: s.qualified_name):
            anchors = detection_hosts_for(spec.booster)
            if not anchors:
                anchors = sorted(ledgers)
            placed = False
            for anchor in anchors:
                if self._try_assign(spec, anchor, placement, ledgers):
                    placement.metrics.mitigation_colocated += 1
                    placed = True
                    continue
                for candidate in downstream.get(anchor, []):
                    if self._try_assign(spec, candidate, placement, ledgers):
                        placement.metrics.mitigation_downstream += 1
                        placed = True
                        break
            if not placed:
                # Last resort: anywhere with room beats not mitigating at
                # all (traffic detours to it, as with a legacy middlebox).
                for switch in sorted(ledgers):
                    if self._try_assign(spec, switch, placement, ledgers):
                        placement.metrics.mitigation_detoured += 1
                        placed = True
                        break
            if not placed:
                placement.feasible = False
                placement.infeasibility_reasons.append(
                    f"mitigation module {spec.qualified_name} fits nowhere")

    @staticmethod
    def _downstream_neighbors(topo: Topology,
                              paths: Sequence[Path]) -> Dict[str, List[str]]:
        """Per switch, its successors along the traffic paths."""
        result: Dict[str, List[str]] = {}
        switch_set = set(topo.switch_names)
        for path in paths:
            for here, nxt in path.links():
                if here in switch_set and nxt in switch_set:
                    bucket = result.setdefault(here, [])
                    if nxt not in bucket:
                        bucket.append(nxt)
        return result

    def _place_support(self, support: List[PpmSpec], merged: MergedGraph,
                       placement: Placement,
                       ledgers: Dict[str, ResourceLedger]) -> None:
        """Support modules go wherever a connected module landed."""
        for spec in support:
            neighbors = set(merged.merged.successors(spec.qualified_name))
            neighbors |= set(merged.merged.predecessors(spec.qualified_name))
            for switch, assigned in sorted(placement.assignments.items()):
                names_here = {s.qualified_name for s in assigned}
                if spec.qualified_name in names_here:
                    continue
                # A support module is needed if any connected module (or,
                # for parsers with no edges, any module at all) is here.
                needed = (not neighbors and names_here) or \
                    (neighbors & names_here)
                if not needed:
                    continue
                if not self._try_assign(spec, switch, placement, ledgers):
                    placement.feasible = False
                    placement.infeasibility_reasons.append(
                        f"support module {spec.qualified_name} does not "
                        f"fit on {switch}")

    @staticmethod
    def _finalize_metrics(placement: Placement,
                          detector_switches: List[str],
                          switch_paths: Dict[str, Set[int]],
                          paths: Sequence[Path],
                          ledgers: Dict[str, ResourceLedger],
                          topo: Topology) -> None:
        placement.metrics.detector_switch_count = len(detector_switches)
        # Coverage is per detection module: every module must see every
        # path; the metric reports the worst module's coverage.
        coverages = []
        detection_specs = {}
        for switch, assigned in placement.assignments.items():
            for spec in assigned:
                if spec.role == PpmRole.DETECTION:
                    detection_specs.setdefault(spec.qualified_name,
                                               set()).add(switch)
        for hosts in detection_specs.values():
            covered: Set[int] = set()
            for switch in hosts:
                covered |= switch_paths.get(switch, set())
            coverages.append(len(covered) / len(paths) if paths else 1.0)
        placement.metrics.path_coverage = min(coverages) if coverages else (
            1.0 if paths else 1.0)
        for name in topo.switch_names:
            placement.metrics.switch_utilization[name] = \
                ledgers[name].utilization()
