"""Booster dataflow graphs (Figure 1a).

A booster's PPMs form a dataflow graph: vertices are PPMs, directed edges
follow traffic direction, and each edge carries a weight — the amount of
state the downstream module reads from the upstream one (which a packet
would have to carry as a header field if the two modules land on
different switches).  Clusters of heavily-connected PPMs should therefore
be co-located; the analyzer and scheduler both consume this structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .ppm import PpmSpec


@dataclass(frozen=True)
class DataflowEdge:
    """A directed edge ``src -> dst`` carrying ``weight`` bits of state."""

    src: str
    dst: str
    weight: float = 0.0

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"edge weight must be >= 0, got {self.weight}")


class DataflowGraph:
    """A directed, edge-weighted graph over PPM specs."""

    def __init__(self, name: str = "dataflow"):
        self.name = name
        self._ppms: Dict[str, PpmSpec] = {}
        self._edges: Dict[Tuple[str, str], DataflowEdge] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_ppm(self, spec: PpmSpec) -> PpmSpec:
        key = spec.qualified_name
        if key in self._ppms:
            raise ValueError(f"PPM {key!r} already in graph {self.name!r}")
        self._ppms[key] = spec
        return spec

    def add_edge(self, src: str, dst: str, weight: float = 0.0) -> DataflowEdge:
        src_key, dst_key = self._resolve(src), self._resolve(dst)
        if src_key == dst_key:
            raise ValueError(f"self-edge on {src_key!r}")
        edge = DataflowEdge(src_key, dst_key, weight)
        self._edges[(src_key, dst_key)] = edge
        return edge

    def _resolve(self, name: str) -> str:
        if name in self._ppms:
            return name
        matches = [key for key in self._ppms if key.endswith(f".{name}")]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise KeyError(f"no PPM named {name!r} in graph {self.name!r}")
        raise KeyError(f"ambiguous PPM name {name!r}: {sorted(matches)}")

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def ppms(self) -> List[PpmSpec]:
        return list(self._ppms.values())

    def ppm(self, name: str) -> PpmSpec:
        return self._ppms[self._resolve(name)]

    def edges(self) -> List[DataflowEdge]:
        return list(self._edges.values())

    def edge(self, src: str, dst: str) -> Optional[DataflowEdge]:
        try:
            return self._edges.get((self._resolve(src), self._resolve(dst)))
        except KeyError:
            return None

    def successors(self, name: str) -> List[str]:
        key = self._resolve(name)
        return sorted(dst for (src, dst) in self._edges if src == key)

    def predecessors(self, name: str) -> List[str]:
        key = self._resolve(name)
        return sorted(src for (src, dst) in self._edges if dst == key)

    def __len__(self) -> int:
        return len(self._ppms)

    def __contains__(self, name: str) -> bool:
        try:
            self._resolve(name)
            return True
        except KeyError:
            return False

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def total_requirement(self):
        from ..dataplane.resources import ResourceVector
        return ResourceVector.total(p.requirement for p in self._ppms.values())

    def clusters(self, weight_threshold: float) -> List[Set[str]]:
        """Group PPMs connected by edges of weight >= threshold.

        The paper's guidance: "identify clusters of PPMs, where
        intra-cluster edges are dense and have heavy weights".  We take
        the connected components of the subgraph keeping only heavy
        edges — PPMs in one component must move together or pay the
        header-carrying cost of the cut edge.
        """
        parent = {name: name for name in self._ppms}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for (src, dst), edge in self._edges.items():
            if edge.weight >= weight_threshold:
                parent[find(src)] = find(dst)

        groups: Dict[str, Set[str]] = {}
        for name in self._ppms:
            groups.setdefault(find(name), set()).add(name)
        return sorted(groups.values(), key=lambda s: sorted(s))

    def cut_weight(self, partition: Iterable[Set[str]]) -> float:
        """Total weight of edges crossing the given partition — the
        header bits packets must carry between switches."""
        owner: Dict[str, int] = {}
        for index, group in enumerate(partition):
            for name in group:
                if name in owner:
                    raise ValueError(f"PPM {name!r} in two partition groups")
                owner[name] = index
        missing = set(self._ppms) - set(owner)
        if missing:
            raise ValueError(f"partition misses PPMs: {sorted(missing)}")
        return sum(edge.weight for (src, dst), edge in self._edges.items()
                   if owner[src] != owner[dst])

    def topological_order(self) -> List[str]:
        """PPM names in dependency order; raises on cycles."""
        indegree = {name: 0 for name in self._ppms}
        for (_, dst) in self._edges:
            indegree[dst] += 1
        ready = sorted(n for n, d in indegree.items() if d == 0)
        order: List[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for succ in self.successors(name):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
            ready.sort()
        if len(order) != len(self._ppms):
            cyclic = sorted(set(self._ppms) - set(order))
            raise ValueError(f"dataflow cycle among {cyclic}")
        return order

    def __repr__(self) -> str:
        return (f"DataflowGraph({self.name!r}, {len(self._ppms)} PPMs, "
                f"{len(self._edges)} edges)")
