"""Static verification of boosters and their composition (§6).

"FastFlex must make sure that the individual in-network defenses, as
well as their composition, are secure.  Since switch programs are much
simpler than general-purpose programs, it should be possible to achieve
high assurance by formally verifying them [52, 72]."

Our PPM IR is simple enough to check mechanically.  The verifier runs
two passes:

* **Per booster** — structural soundness of the dataflow graph (acyclic,
  connected to a parser, mitigation reachable from detection), resource
  sanity (non-negative vectors, each module individually fits the
  reference switch profile), and mode hygiene (declared modes actually
  gate something; detectors that trigger modes are always-on).
* **Composition** — across the whole catalog: mode names don't collide
  across attack types, every booster named in a mode spec exists, and
  the merged catalog's footprint is reported against the network's
  aggregate budget (a too-big catalog is a warning, not an error — the
  scheduler decides placements, but an operator should know).

Findings come back as structured records, ``error`` severity meaning
"the controller should refuse to deploy this".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..dataplane.resources import ResourceVector, TOFINO_LIKE
from ..telemetry import metrics
from .analyzer import ProgramAnalyzer
from .booster import Booster
from .dataflow import DataflowGraph
from .modes import DEFAULT_MODE
from .ppm import PpmKind, PpmRole

# Verification aborts (a booster's own code raising mid-check) must be
# countable per run: a sweep that silently degrades every finding to
# "dataflow() raised" would otherwise look like a clean catalog with
# one odd error finding.
_C_VERIFY_ABORTS = metrics().counter(
    "verify_aborts_total",
    "verification passes aborted by an exception, by failing check",
    labelnames=("check",))


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One verification result."""

    severity: Severity
    booster: str
    check: str
    message: str

    def __str__(self) -> str:
        return (f"[{self.severity.value}] {self.booster}: "
                f"{self.check}: {self.message}")


@dataclass
class VerificationReport:
    findings: List[Finding] = field(default_factory=list)

    def add(self, severity: Severity, booster: str, check: str,
            message: str) -> None:
        self.findings.append(Finding(severity, booster, check, message))

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings
                if f.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def __str__(self) -> str:
        if not self.findings:
            return "verification clean"
        return "\n".join(str(f) for f in self.findings)


class BoosterVerifier:
    """Checks one booster, or the composition of a catalog."""

    def __init__(self, switch_profile: ResourceVector = TOFINO_LIKE):
        self.switch_profile = switch_profile

    # ------------------------------------------------------------------
    # Per-booster checks
    # ------------------------------------------------------------------
    def verify_booster(self, booster: Booster) -> VerificationReport:
        report = VerificationReport()
        name = booster.name or "<unnamed>"
        if not booster.name:
            report.add(Severity.ERROR, name, "identity",
                       "booster has no name; it cannot be gated by modes")
        try:
            graph = booster.dataflow()
        except (ValueError, KeyError) as exc:
            # Known failure shape: graph construction rejecting its own
            # inputs (cycles, duplicate PPM names, missing wiring).
            _C_VERIFY_ABORTS.labels("dataflow").inc()
            report.add(Severity.ERROR, name, "dataflow",
                       f"dataflow() rejected its own spec: {exc!r}")
            return report
        except Exception as exc:  # noqa: BLE001 - surface as a finding
            _C_VERIFY_ABORTS.labels("dataflow").inc()
            report.add(Severity.ERROR, name, "dataflow",
                       f"dataflow() raised: {exc!r}")
            return report
        self._check_graph(name, graph, report)
        self._check_resources(name, graph, report)
        self._check_modes(booster, report)
        return report

    def _check_graph(self, name: str, graph: DataflowGraph,
                     report: VerificationReport) -> None:
        if len(graph) == 0:
            report.add(Severity.ERROR, name, "dataflow",
                       "booster declares no PPMs")
            return
        try:
            graph.topological_order()
        except ValueError as exc:
            report.add(Severity.ERROR, name, "dataflow", str(exc))
            return
        parsers = [p for p in graph.ppms() if p.kind == PpmKind.PARSER]
        if not parsers:
            report.add(Severity.WARNING, name, "parser",
                       "no parser PPM: the booster inherits whatever the "
                       "routing parser extracts")
        detection = [p.qualified_name for p in graph.ppms()
                     if p.role == PpmRole.DETECTION]
        mitigation = [p.qualified_name for p in graph.ppms()
                      if p.role == PpmRole.MITIGATION]
        if not detection and not mitigation:
            report.add(Severity.ERROR, name, "roles",
                       "no detection or mitigation modules")
        if mitigation and detection:
            reachable = self._reachable_from(graph, detection)
            for module in mitigation:
                if module not in reachable:
                    report.add(
                        Severity.WARNING, name, "reachability",
                        f"mitigation module {module} has no dataflow "
                        f"path from any detection module — it cannot be "
                        f"driven by this booster's own signals")
        for ppm in graph.ppms():
            if ppm.factory is None and ppm.kind == PpmKind.LOGIC \
                    and ppm.role != PpmRole.SUPPORT:
                report.add(
                    Severity.WARNING, name, "runtime",
                    f"{ppm.qualified_name} declares no runtime factory; "
                    f"it is planning-only")

    @staticmethod
    def _reachable_from(graph: DataflowGraph,
                        roots: Sequence[str]) -> set:
        seen = set(roots)
        frontier = list(roots)
        while frontier:
            node = frontier.pop()
            for succ in graph.successors(node):
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return seen

    def _check_resources(self, name: str, graph: DataflowGraph,
                         report: VerificationReport) -> None:
        for ppm in graph.ppms():
            if not ppm.requirement.is_nonnegative():
                report.add(Severity.ERROR, name, "resources",
                           f"{ppm.qualified_name} declares a negative "
                           f"resource requirement {ppm.requirement}")
            elif not ppm.requirement.fits_within(self.switch_profile):
                report.add(
                    Severity.ERROR, name, "resources",
                    f"{ppm.qualified_name} needs {ppm.requirement}, "
                    f"which no {self.switch_profile} switch can host")
        total = graph.total_requirement()
        if not total.fits_within(self.switch_profile):
            report.add(
                Severity.WARNING, name, "resources",
                f"whole booster ({total}) exceeds one switch; the "
                f"scheduler will have to split it across switches")

    def _check_modes(self, booster: Booster,
                     report: VerificationReport) -> None:
        name = booster.name or "<unnamed>"
        modes = booster.modes()
        for spec in modes:
            if spec.name == DEFAULT_MODE:
                report.add(Severity.ERROR, name, "modes",
                           "a booster may not define the default mode")
            if not spec.boosters_on:
                report.add(Severity.WARNING, name, "modes",
                           f"mode {spec.name!r} gates nothing on")
        if booster.always_on() and not modes \
                and not booster.attack_types:
            report.add(Severity.WARNING, name, "modes",
                       "always-on booster with no attack types or "
                       "modes: nothing would ever react to its signals")

    # ------------------------------------------------------------------
    # Composition checks
    # ------------------------------------------------------------------
    def verify_composition(self, boosters: Sequence[Booster],
                           n_switches: int = 1) -> VerificationReport:
        report = VerificationReport()
        names = set()
        for booster in boosters:
            if booster.name in names:
                report.add(Severity.ERROR, booster.name, "composition",
                           "duplicate booster name in the catalog")
            names.add(booster.name)

        # Mode uniqueness per attack type, and referenced boosters exist.
        seen_modes: Dict[tuple, str] = {}
        gate_names = set(names)
        for booster in boosters:
            for spec in booster.modes():
                key = (spec.attack_type, spec.name)
                if key in seen_modes and seen_modes[key] != booster.name:
                    report.add(
                        Severity.ERROR, booster.name, "composition",
                        f"mode {spec.name!r}/{spec.attack_type!r} is "
                        f"also defined by {seen_modes[key]!r}")
                seen_modes[key] = booster.name
                for gated in spec.boosters_on:
                    root = gated.split(".")[0]
                    if root not in gate_names:
                        report.add(
                            Severity.ERROR, booster.name, "composition",
                            f"mode {spec.name!r} gates unknown booster "
                            f"{gated!r}")

        # Catalog footprint vs. the network's aggregate budget.
        try:
            merged = ProgramAnalyzer().merge(
                [b.dataflow() for b in boosters])
        except ValueError as exc:
            # Known failure shape: the analyzer refusing to merge
            # conflicting graphs (name clashes across boosters).
            _C_VERIFY_ABORTS.labels("composition").inc()
            report.add(Severity.ERROR, "<catalog>", "composition",
                       f"catalog merge rejected: {exc!r}")
            return report
        except Exception as exc:  # noqa: BLE001
            _C_VERIFY_ABORTS.labels("composition").inc()
            report.add(Severity.ERROR, "<catalog>", "composition",
                       f"joint analysis failed: {exc!r}")
            return report
        total = merged.merged.total_requirement()
        budget = self.switch_profile.scaled(max(n_switches, 1))
        if not total.fits_within(budget):
            report.add(
                Severity.WARNING, "<catalog>", "capacity",
                f"merged catalog needs {total} but {n_switches} "
                f"switch(es) offer {budget}; expect partial placements")
        return report


def verify_catalog(boosters: Sequence[Booster],
                   switch_profile: ResourceVector = TOFINO_LIKE,
                   n_switches: int = 1) -> VerificationReport:
    """Verify every booster plus the composition; one merged report."""
    verifier = BoosterVerifier(switch_profile)
    report = VerificationReport()
    for booster in boosters:
        report.findings.extend(verifier.verify_booster(booster).findings)
    report.findings.extend(
        verifier.verify_composition(boosters, n_switches).findings)
    return report
