"""Distributed detection: synchronizing detector views (§3.3).

Some attacks are locally detectable (link flooding — one switch sees its
own links); others are only visible network-wide (global rate limits
[62], network-wide heavy hitters [34]).  For those, FastFlex
"additionally synchronize[s] different detectors' views periodically,
e.g., similarly using probing packets ... while minimizing the amount of
synchronization across detectors".

:class:`DetectorSyncAgent` implements that: each detector periodically
sends a *digest* of its local counters — truncated to the top-``k``
entries to bound probe bytes — to its peer detectors as SYNC packets.
Each agent merges fresh remote digests with its local counters to form a
global view, on which threshold detectors fire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from ..dataplane.resources import ResourceVector
from ..netsim.engine import PeriodicProcess
from ..netsim.packet import Packet, PacketKind, Protocol
from ..netsim.switch import Consume, ProgrammableSwitch, ProgramResult, SwitchProgram

#: One stage of digest logic plus merge registers.
AGENT_REQUIREMENT = ResourceVector(stages=1, sram_mb=0.1, tcam_kb=0, alus=2)

#: Provider of the local counters to synchronize, e.g. a HashPipe's
#: heavy-hitter table or a per-tenant byte counter.
CounterSource = Callable[[], Dict[Hashable, float]]


@dataclass
class SyncStats:
    """Overhead accounting for the sync-ablation benchmark."""

    digests_sent: int = 0
    digests_received: int = 0
    bytes_sent: int = 0
    entries_truncated: int = 0


class DetectorSyncAgent(SwitchProgram):
    """Per-switch view synchronization endpoint."""

    def __init__(self, source: CounterSource, peers: List[str],
                 sync_period_s: float = 0.1, top_k: int = 32,
                 staleness_bound_s: Optional[float] = None,
                 name: str = "fastflex.sync_agent"):
        super().__init__(name, AGENT_REQUIREMENT)
        if sync_period_s <= 0:
            raise ValueError("sync_period_s must be positive")
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.source = source
        self.peers = list(peers)
        self.sync_period_s = sync_period_s
        self.top_k = top_k
        #: Remote views older than this are ignored in the global view;
        #: defaults to three sync periods.
        self.staleness_bound_s = (staleness_bound_s
                                  if staleness_bound_s is not None
                                  else 3 * sync_period_s)
        self.stats = SyncStats()
        self._remote_views: Dict[str, Tuple[float, Dict[Hashable, float]]] = {}
        self._process: Optional[PeriodicProcess] = None

    # ------------------------------------------------------------------
    # SwitchProgram interface
    # ------------------------------------------------------------------
    def on_install(self, switch: ProgrammableSwitch) -> None:
        super().on_install(switch)
        self._process = switch.sim.every(
            self.sync_period_s, self._broadcast_digest,
            start=self.sync_period_s)
        switch.own(self._process)

    def on_remove(self, switch: ProgrammableSwitch) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None
        super().on_remove(switch)

    def process(self, switch: ProgrammableSwitch,
                packet: Packet) -> ProgramResult:
        if packet.kind != PacketKind.SYNC:
            return None
        if packet.dst != switch.name:
            return None  # in transit to another detector; forward normally
        origin = packet.headers["origin"]
        digest = packet.headers["digest"]
        self._remote_views[origin] = (switch.sim.now, dict(digest))
        self.stats.digests_received += 1
        return Consume()

    def export_state(self) -> Dict:
        return {"remote_views": {origin: (t, dict(view))
                                 for origin, (t, view)
                                 in self._remote_views.items()}}

    def import_state(self, state: Dict) -> None:
        for origin, (t, view) in state.get("remote_views", {}).items():
            self._remote_views[origin] = (t, dict(view))

    # ------------------------------------------------------------------
    # Digest exchange
    # ------------------------------------------------------------------
    def _broadcast_digest(self) -> None:
        if self.switch is None:
            return
        digest = self._truncated_digest()
        size = 64 + 12 * len(digest)  # header + (key hash, count) entries
        for peer in self.peers:
            if peer == self.switch.name:
                continue
            packet = Packet(
                src=self.switch.name, dst=peer, size_bytes=size,
                kind=PacketKind.SYNC, proto=Protocol.UDP,
                headers={"origin": self.switch.name, "digest": dict(digest)},
            )
            packet.created_at = self.switch.sim.now
            next_hop = self.switch._resolve_next_hop(packet)
            if next_hop is not None:
                self.switch.send_via(next_hop, packet)
                self.stats.digests_sent += 1
                self.stats.bytes_sent += size

    def _truncated_digest(self) -> Dict[Hashable, float]:
        counters = self.source()
        if len(counters) <= self.top_k:
            return dict(counters)
        ranked = sorted(counters.items(),
                        key=lambda kv: (-kv[1], repr(kv[0])))
        self.stats.entries_truncated += len(counters) - self.top_k
        return dict(ranked[:self.top_k])

    # ------------------------------------------------------------------
    # The merged view detectors threshold on
    # ------------------------------------------------------------------
    def global_view(self) -> Dict[Hashable, float]:
        """Local counters plus every fresh remote digest, merged by sum."""
        if self.switch is None:
            return dict(self.source())
        now = self.switch.sim.now
        merged: Dict[Hashable, float] = dict(self.source())
        for origin, (t, view) in self._remote_views.items():
            if now - t > self.staleness_bound_s:
                continue
            for key, value in view.items():
                merged[key] = merged.get(key, 0.0) + value
        return merged

    def global_exceeders(self, threshold: float) -> Dict[Hashable, float]:
        """Keys whose *global* count crosses the threshold — the
        network-wide heavy hitter / global rate limit query."""
        return {key: value for key, value in self.global_view().items()
                if value >= threshold}
