"""Distributed mode-change protocol, entirely in the data plane (§3.3).

Mode changes are carried by special probe packets that flood switch to
switch: a detector that has classified an attack *initiates* a change by
applying it locally and emitting :data:`~repro.netsim.packet.PacketKind.
MODE_CHANGE` probes to its neighbors; every switch that applies a
received update (epoch check makes this idempotent) re-emits it to its
other neighbors.  No controller is on the path — propagation completes
at link-RTT timescale, which is the crux of the Figure 3 result.

Region scoping: each probe carries a ``scope`` hop budget; switches
beyond the budget never hear about the change, so mixed-vector attacks
can hold different modes in different regions simultaneously.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..netsim.packet import Packet, PacketKind, Protocol
from ..netsim.switch import Consume, ProgrammableSwitch, ProgramResult, SwitchProgram
from ..dataplane.resources import ResourceVector
from ..telemetry import metrics, trace
from .modes import (DEFAULT_MODE, ModeChangeEvent, ModeEventBus,
                    ModeRegistry, ModeTable)
from .stability import StabilityGuard

# Process-wide probe/transition telemetry (DESIGN.md "Telemetry").
# Probe loss is counted at the link layer (see netsim/links.py), which
# is the only place a drop is actually observed.
_MET = metrics()
_TRACE = trace()
_C_PROBES_SENT = _MET.counter(
    "mode_probes_sent_total", "MODE_CHANGE probes emitted by agents")
_C_PROBES_RECEIVED = _MET.counter(
    "mode_probes_received_total", "MODE_CHANGE probes consumed by agents")
_C_TRANSITIONS = _MET.counter(
    "mode_transitions_total", "mode-table transitions applied",
    labelnames=("cause",))
_C_SUPPRESSED = _MET.counter(
    "mode_changes_suppressed_total",
    "locally initiated changes vetoed by the stability guard")

#: Resource cost of the agent: one stage of logic plus epoch registers.
AGENT_REQUIREMENT = ResourceVector(stages=1, sram_mb=0.05, tcam_kb=0, alus=2)

#: Default hop budget — effectively network-wide for our topologies.
NETWORK_WIDE_SCOPE = 32


class ModeChangeAgent(SwitchProgram):
    """The per-switch protocol endpoint.

    Owns the switch's :class:`~repro.core.modes.ModeTable`, consumes
    MODE_CHANGE probes, applies-and-refloods them, and lets local
    detectors initiate changes.  An optional :class:`StabilityGuard`
    vets locally initiated changes against flapping (§6 "Stability").

    **Loss tolerance.**  Mode probes cross the same links as the attack
    traffic and can be dropped; a switch that misses the flood would be
    stuck in the wrong mode.  The *initiating* agent therefore
    re-advertises its change periodically with an incrementing refresh
    sequence: agents re-flood any (epoch, seq) newer than what they last
    forwarded, so a refresh wave reaches switches the original flood
    missed.  Non-default modes are refreshed for as long as they hold;
    a return to default is refreshed a bounded number of rounds.
    """

    def __init__(self, registry: ModeRegistry,
                 bus: Optional[ModeEventBus] = None,
                 guard: Optional[StabilityGuard] = None,
                 readvertise_s: float = 0.5,
                 default_refresh_rounds: int = 5,
                 name: str = "fastflex.mode_agent"):
        super().__init__(name, AGENT_REQUIREMENT)
        if readvertise_s <= 0:
            raise ValueError("readvertise_s must be positive")
        self.readvertise_s = readvertise_s
        self.default_refresh_rounds = default_refresh_rounds
        self.registry = registry
        self.mode_table = ModeTable(registry)
        self.bus = bus
        self.guard = guard
        #: The programmable switches this agent floods to.  ``None``
        #: means "my direct switch neighbors" (the fully-programmable
        #: case); in partial deployments, :func:`install_mode_agents`
        #: fills in overlay peers — the nearest programmable switches
        #: through any intervening legacy hardware (§2's incremental
        #: deployment story).
        self.overlay_peers: Optional[List[str]] = None
        self.probes_sent = 0
        self.probes_received = 0
        self.changes_suppressed = 0
        #: Per attack type: the newest (epoch, seq) this agent has
        #: forwarded — the flooding dedup key.
        self._forwarded: Dict[str, tuple] = {}
        #: Changes this agent initiated and still refreshes:
        #: attack_type -> [mode, epoch, seq, scope, rounds_left].
        self._owned: Dict[str, list] = {}
        self._refresh_process = None
        #: Why the in-flight ``mode_table.apply`` happened — read by the
        #: change observer so transitions are traced with their cause.
        self._apply_cause = "unknown"
        self.mode_table.on_change(self._on_transition)

    # ------------------------------------------------------------------
    # SwitchProgram interface
    # ------------------------------------------------------------------
    def on_remove(self, switch: ProgrammableSwitch) -> None:
        if self._refresh_process is not None:
            self._refresh_process.stop()
            self._refresh_process = None
        super().on_remove(switch)

    def process(self, switch: ProgrammableSwitch,
                packet: Packet) -> ProgramResult:
        if packet.kind != PacketKind.MODE_CHANGE:
            return None
        self.probes_received += 1
        _C_PROBES_RECEIVED.inc()
        headers = packet.headers
        if packet.dst != switch.name and packet.dst in switch.routes:
            # In transit to another agent (unicast through legacy
            # switches is possible, but a probe addressed elsewhere that
            # lands here was simply mid-route): forward normally.
            return None
        attack_type = headers["attack_type"]
        self._apply_cause = "probe"
        self.mode_table.apply(attack_type, headers["mode"],
                              headers["epoch"])
        # Flooding dedup on (epoch, seq): re-advertisements with a newer
        # seq re-flood even where the mode was already applied, which is
        # what carries a refresh wave past switches that heard the first
        # flood to switches that missed it.
        key = (headers["epoch"], headers.get("seq", 0))
        scope = headers.get("scope", 0)
        if key > self._forwarded.get(attack_type, (-1, -1)) and scope > 0:
            self._forwarded[attack_type] = key
            self._flood(switch, attack_type, headers["mode"],
                        headers["epoch"], scope - 1,
                        origin=headers.get("origin", switch.name),
                        skip=headers.get("sender"),
                        seq=headers.get("seq", 0))
        return Consume()

    def export_state(self) -> Dict:
        return {
            "modes": dict(self.mode_table.active_modes()),
            "epochs": {attack: self.mode_table.epoch_for(attack)
                       for attack in self.registry.attack_types()},
        }

    def import_state(self, state: Dict) -> None:
        self._apply_cause = "state_import"
        for attack, epoch in state.get("epochs", {}).items():
            mode = state.get("modes", {}).get(attack, "default")
            self.mode_table.apply(attack, mode, epoch)

    # ------------------------------------------------------------------
    # Initiation (called by local detectors)
    # ------------------------------------------------------------------
    def initiate(self, attack_type: str, mode: str,
                 scope: int = NETWORK_WIDE_SCOPE) -> bool:
        """Start a distributed mode change from this switch.

        Returns False if the stability guard suppressed it or the local
        state already supersedes it.
        """
        if self.switch is None:
            raise RuntimeError(f"{self.name} is not installed on a switch")
        now = self.switch.sim.now
        if self.guard is not None and not self.guard.allow_change(
                attack_type, mode, now):
            self.changes_suppressed += 1
            _C_SUPPRESSED.inc()
            if _TRACE.enabled:
                _TRACE.emit("mode_change_suppressed", sim_time=now,
                            switch=self.switch.name,
                            attack_type=attack_type, mode=mode)
            return False
        epoch = self.mode_table.next_epoch(attack_type)
        self._apply_cause = "local_detection"
        applied = self.mode_table.apply(attack_type, mode, epoch)
        if not applied:
            return False
        if self.guard is not None:
            self.guard.record_change(attack_type, mode, now)
        self._forwarded[attack_type] = (epoch, 0)
        rounds = (-1 if mode != DEFAULT_MODE
                  else self.default_refresh_rounds)
        self._owned[attack_type] = [mode, epoch, 0, scope, rounds]
        self._ensure_refresh_loop()
        self._flood(self.switch, attack_type, mode, epoch, scope - 1,
                    origin=self.switch.name, skip=None, seq=0)
        return True

    def _ensure_refresh_loop(self) -> None:
        if self._refresh_process is None and self.switch is not None:
            self._refresh_process = self.switch.sim.every(
                self.readvertise_s, self._readvertise,
                start=self.readvertise_s)
            self.switch.own(self._refresh_process)

    def _readvertise(self) -> None:
        """Re-flood every owned change with a fresh sequence number."""
        if self.switch is None:
            return
        for attack_type in list(self._owned):
            record = self._owned[attack_type]
            mode, epoch, seq, scope, rounds = record
            if epoch != self.mode_table.epoch_for(attack_type):
                # Someone superseded our change; stop refreshing it.
                del self._owned[attack_type]
                continue
            if rounds == 0:
                del self._owned[attack_type]
                continue
            record[2] = seq + 1
            if rounds > 0:
                record[4] = rounds - 1
            self._forwarded[attack_type] = (epoch, record[2])
            self._flood(self.switch, attack_type, mode, epoch,
                        scope - 1, origin=self.switch.name, skip=None,
                        seq=record[2])

    # ------------------------------------------------------------------
    def _flood(self, switch: ProgrammableSwitch, attack_type: str,
               mode: str, epoch: int, scope: int, origin: str,
               skip: Optional[str], seq: int = 0) -> None:
        if self.overlay_peers is not None:
            targets = list(self.overlay_peers)
        else:
            targets = [neighbor for neighbor, link in switch.links.items()
                       if isinstance(link.dst, ProgrammableSwitch)
                       and link.dst.programmable]
        for target in targets:
            if target == skip:
                continue
            probe = Packet(
                src=switch.name, dst=target, size_bytes=64,
                kind=PacketKind.MODE_CHANGE, proto=Protocol.UDP,
                headers={
                    "attack_type": attack_type,
                    "mode": mode,
                    "epoch": epoch,
                    "scope": scope,
                    "origin": origin,
                    "sender": switch.name,
                    "seq": seq,
                },
            )
            probe.created_at = switch.sim.now
            if target in switch.links:
                switch.links[target].send(probe)
                self.probes_sent += 1
                _C_PROBES_SENT.inc()
                continue
            # The peer sits behind legacy hardware: unicast through it.
            next_hop = switch._resolve_next_hop(probe)
            if next_hop is not None:
                switch.send_via(next_hop, probe)
                self.probes_sent += 1
                _C_PROBES_SENT.inc()

    def _on_transition(self, attack_type: str, old: str, new: str,
                       epoch: int) -> None:
        cause = self._apply_cause
        self._apply_cause = "unknown"
        _C_TRANSITIONS.labels(cause).inc()
        if self.switch is None:
            return
        now = self.switch.sim.now
        if _TRACE.enabled:
            _TRACE.emit("mode_transition", sim_time=now,
                        switch=self.switch.name, attack_type=attack_type,
                        old_mode=old, new_mode=new, epoch=epoch,
                        cause=cause)
        if self.bus is not None:
            self.bus.publish(ModeChangeEvent(
                time=now, switch=self.switch.name,
                attack_type=attack_type, old_mode=old, new_mode=new,
                epoch=epoch))


def install_mode_agents(topo, registry: ModeRegistry,
                        bus: Optional[ModeEventBus] = None,
                        guard_factory=None) -> Dict[str, ModeChangeAgent]:
    """Install one agent per *programmable* switch.

    ``guard_factory`` (switch_name -> StabilityGuard) attaches per-switch
    stability guards when provided.  In partial deployments, each agent
    is given its overlay peers — the nearest programmable switches
    reachable through any intervening legacy hardware — so mode probes
    tunnel through legacy switches like ordinary traffic.
    """
    agents: Dict[str, ModeChangeAgent] = {}
    programmable = set(topo.programmable_switch_names)
    partial = programmable != set(topo.switch_names)
    for name in sorted(programmable):
        guard = guard_factory(name) if guard_factory is not None else None
        agent = ModeChangeAgent(registry, bus=bus, guard=guard)
        topo.switch(name).install_program(agent)
        if partial:
            agent.overlay_peers = sorted(
                _overlay_peers(topo, name, programmable))
        agents[name] = agent
    return agents


def _overlay_peers(topo, name: str, programmable: set) -> set:
    """Programmable switches reachable from ``name`` crossing only
    legacy switches (BFS that stops expanding at programmable nodes)."""
    switch_names = set(topo.switch_names)
    peers: set = set()
    visited = {name}
    frontier = [name]
    while frontier:
        current = frontier.pop()
        for neighbor in topo.switch(current).neighbors:
            if neighbor not in switch_names or neighbor in visited:
                continue
            visited.add(neighbor)
            if neighbor in programmable:
                peers.add(neighbor)
            else:
                frontier.append(neighbor)
    return peers
