"""Centralized traffic engineering: the default-mode optimizer.

FastFlex's default mode "operates under optimal configurations computed
by centralized control, e.g., using traffic engineering over a stable
traffic matrix" (Section 1).  Both the FastFlex controller (for the
default mode) and the baseline SDN defense (for its periodic
reconfiguration) use this module.

The optimizer is a deterministic greedy min-max heuristic: commodities
are routed in decreasing demand order, each onto whichever of its k
shortest paths minimizes the resulting maximum link utilization —
the objective Section 3.2 names ("minimize the maximal link load").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..netsim.flows import Flow
from ..netsim.routing import Path, k_shortest_paths
from ..netsim.topology import Topology

LinkKey = Tuple[str, str]


@dataclass
class TeResult:
    """Outcome of one TE computation."""

    paths: Dict[int, Path] = field(default_factory=dict)  # flow_id -> path
    max_utilization: float = 0.0
    link_load: Dict[LinkKey, float] = field(default_factory=dict)

    def path_for(self, flow: Flow) -> Optional[Path]:
        return self.paths.get(flow.flow_id)


def link_loads(topo: Topology, flows: Iterable[Flow]) -> Dict[LinkKey, float]:
    """Offered load per directed link if every flow sent its demand."""
    load: Dict[LinkKey, float] = {key: 0.0 for key in topo.links}
    for flow in flows:
        if flow.path is None:
            continue
        for key in flow.path.link_keys:
            load[key] += flow.demand_bps
    return load


def max_link_utilization(topo: Topology,
                         flows: Iterable[Flow]) -> float:
    """The min-max TE objective value for the flows' current paths."""
    worst = 0.0
    for key, load in link_loads(topo, flows).items():
        worst = max(worst, load / topo.links[key].capacity_bps)
    return worst


def greedy_min_max_te(topo: Topology, flows: List[Flow], k: int = 4,
                      assign: bool = True) -> TeResult:
    """Route each flow to minimize the running max link utilization.

    Parameters
    ----------
    k:
        Number of candidate shortest paths per commodity.
    assign:
        When True (default) each flow's ``path`` is updated in place —
        this is the controller "deploying" the configuration.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    result = TeResult()
    load: Dict[LinkKey, float] = {key: 0.0 for key in topo.links}
    capacities = {key: link.capacity_bps for key, link in topo.links.items()}

    # Deterministic order: big flows first, ties by flow id.
    ordered = sorted(flows, key=lambda f: (-f.demand_bps, f.flow_id))
    # Candidate sets come from the topology's versioned route cache:
    # repeated TE passes (and repeated commodities within one pass) cost
    # a memo lookup unless the candidates' links actually changed.
    for flow in ordered:
        candidates = k_shortest_paths(topo, flow.src, flow.dst, k)
        best_path: Optional[Path] = None
        best_cost: Tuple[float, float] = (float("inf"), float("inf"))
        for path in candidates:
            worst = 0.0
            for key in path.link_keys:
                worst = max(worst,
                            (load[key] + flow.demand_bps) / capacities[key])
            cost = (worst, path.latency(topo))
            if cost < best_cost:
                best_cost = cost
                best_path = path
        if best_path is None:
            raise RuntimeError(
                f"TE found no candidate path for flow {flow.flow_id} "
                f"({flow.src}->{flow.dst}) with k={k}; the topology "
                f"must connect every commodity's endpoints")
        result.paths[flow.flow_id] = best_path
        for key in best_path.link_keys:
            load[key] += flow.demand_bps
        if assign:
            flow.set_path(best_path)

    result.link_load = load
    result.max_utilization = max(
        (load[key] / capacities[key] for key in load), default=0.0)
    return result


def rebalance_excluding_links(topo: Topology, flows: List[Flow],
                              excluded: List[LinkKey], k: int = 6,
                              assign: bool = True) -> TeResult:
    """TE variant that avoids the given (congested/attacked) links.

    Used by the baseline SDN defense: when its monitoring flags flooded
    links, it recomputes TE with those links' candidate paths filtered
    out (falling back to unrestricted candidates if a commodity has no
    alternative).
    """
    banned = set(excluded) | {(b, a) for (a, b) in excluded}
    result = TeResult()
    load: Dict[LinkKey, float] = {key: 0.0 for key in topo.links}
    capacities = {key: link.capacity_bps for key, link in topo.links.items()}
    ordered = sorted(flows, key=lambda f: (-f.demand_bps, f.flow_id))

    for flow in ordered:
        candidates = k_shortest_paths(topo, flow.src, flow.dst, k)
        allowed = [p for p in candidates
                   if not any(key in banned for key in p.link_keys)]
        if not allowed:
            allowed = candidates
        best_path, best_cost = None, (float("inf"), float("inf"))
        for path in allowed:
            worst = 0.0
            for key in path.link_keys:
                worst = max(worst,
                            (load[key] + flow.demand_bps) / capacities[key])
            cost = (worst, path.latency(topo))
            if cost < best_cost:
                best_cost, best_path = cost, path
        if best_path is None:
            raise RuntimeError(
                f"rebalance found no path for flow {flow.flow_id} "
                f"({flow.src}->{flow.dst}) even among unrestricted "
                f"candidates (k={k})")
        result.paths[flow.flow_id] = best_path
        for key in best_path.link_keys:
            load[key] += flow.demand_bps
        if assign:
            flow.set_path(best_path)

    result.link_load = load
    result.max_utilization = max(
        (load[key] / capacities[key] for key in load), default=0.0)
    return result
