"""The FastFlex control plane: compile, plan, deploy.

The controller runs *once at setup time* (and occasionally thereafter):
it performs the Figure 1 pipeline — gather booster dataflow graphs (a),
jointly analyze and merge them (b), place the merged graph onto the
network and compute default-mode TE (c) — and installs everything.  At
runtime it stays out of the loop: mode changes are the data plane's job
(Section 3.3), which is exactly what distinguishes FastFlex from the
SDN baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..netsim.flows import FlowSet
from ..netsim.routing import (install_fast_reroute_alternates,
                              install_host_routes, install_switch_routes)
from ..netsim.topology import Topology
from .analyzer import MergedGraph, ProgramAnalyzer
from .booster import Booster, BoosterRegistry
from .mode_protocol import ModeChangeAgent, install_mode_agents
from .modes import ModeEventBus, ModeRegistry
from .scaling import ScalingManager
from .scheduler import Placement, Scheduler
from .stability import StabilityGuard
from .state_transfer import StateTransferService
from .te import TeResult, greedy_min_max_te


def _default_stability_guard(_switch) -> StabilityGuard:
    """Default per-switch guard factory (picklable, unlike a lambda)."""
    return StabilityGuard()


class BoosterVerificationError(RuntimeError):
    """Raised when the §6 verifier finds error-severity problems."""


@dataclass
class Deployment:
    """Everything the controller set up, handed to runtimes and tests."""

    topo: Topology
    boosters: BoosterRegistry
    mode_registry: ModeRegistry
    bus: ModeEventBus
    merged: MergedGraph
    placement: Placement
    te: TeResult
    flows: FlowSet
    mode_agents: Dict[str, ModeChangeAgent] = field(default_factory=dict)
    state_service: Optional[StateTransferService] = None
    scaling: Optional[ScalingManager] = None

    def agent(self, switch: str) -> ModeChangeAgent:
        try:
            return self.mode_agents[switch]
        except KeyError:
            raise KeyError(f"no mode agent on {switch!r}") from None

    def switches_hosting(self, ppm_name: str) -> List[str]:
        return self.placement.switches_hosting(ppm_name)


class FastFlexController:
    """Setup-time orchestrator.

    Typical use::

        controller = FastFlexController(topo, boosters)
        deployment = controller.setup(flows)

    after which the network self-manages: detectors watch traffic,
    mode-change probes flood on detection, and the controller is only
    needed again for re-planning around new boosters.
    """

    def __init__(self, topo: Topology, boosters: List[Booster],
                 pervasive_detection: bool = True,
                 te_candidates: int = 4,
                 stability_guard_factory=None,
                 reconfig_seconds: float = 2.0):
        self.topo = topo
        self.registry = BoosterRegistry()
        for booster in boosters:
            self.registry.register(booster)
        self.mode_registry = ModeRegistry()
        for booster in boosters:
            for spec in booster.modes():
                self.mode_registry.register(spec)
            if booster.always_on():
                self.mode_registry.always_on.add(booster.name)
        self.bus = ModeEventBus()
        self.analyzer = ProgramAnalyzer()
        self.scheduler = Scheduler(pervasive_detection=pervasive_detection)
        self.te_candidates = te_candidates
        # A module-level default (not a lambda): controllers live inside
        # engine checkpoints, and closures cannot be pickled.
        self.stability_guard_factory = (
            stability_guard_factory
            if stability_guard_factory is not None
            else _default_stability_guard)
        self.reconfig_seconds = reconfig_seconds

    # ------------------------------------------------------------------
    # The Figure 1 pipeline
    # ------------------------------------------------------------------
    def compile(self) -> MergedGraph:
        """Steps (a)+(b): dataflow graphs, joint analysis, merged graph."""
        graphs = [b.dataflow() for b in self.registry.all()]
        return self.analyzer.merge(graphs)

    def plan_te(self, flows: FlowSet) -> TeResult:
        """Default-mode TE over the stable traffic matrix."""
        return greedy_min_max_te(self.topo, list(flows),
                                 k=self.te_candidates)

    def place(self, merged: MergedGraph, te: TeResult) -> Placement:
        """Step (c): map the merged graph onto the network."""
        paths = [te.paths[fid] for fid in sorted(te.paths)]
        return self.scheduler.place(merged, self.topo, paths)

    # ------------------------------------------------------------------
    def setup(self, flows: FlowSet,
              install_routes: bool = True,
              verify: bool = True) -> Deployment:
        """Run the full pipeline and install everything.

        With ``verify=True`` (default) the §6 booster verifier runs
        first and deployment is refused on any error-severity finding.
        """
        if verify:
            from .verify import verify_catalog
            report = verify_catalog(
                self.registry.all(),
                n_switches=max(len(self.topo.switch_names), 1))
            if not report.ok:
                raise BoosterVerificationError(str(report))
        if install_routes:
            install_host_routes(self.topo)
            install_switch_routes(self.topo)
            install_fast_reroute_alternates(self.topo)

        te = self.plan_te(flows)
        merged = self.compile()
        placement = self.place(merged, te)

        mode_agents = install_mode_agents(
            self.topo, self.mode_registry, bus=self.bus,
            guard_factory=self.stability_guard_factory)

        state_service = StateTransferService(self.topo)
        state_service.install_agents()
        scaling = ScalingManager(self.topo, state_service,
                                 reconfig_seconds=self.reconfig_seconds)

        self._install_placement(placement)

        deployment = Deployment(
            topo=self.topo, boosters=self.registry,
            mode_registry=self.mode_registry, bus=self.bus,
            merged=merged, placement=placement, te=te, flows=flows,
            mode_agents=mode_agents, state_service=state_service,
            scaling=scaling)
        for booster in self.registry.all():
            booster.on_deployed(deployment)
        return deployment

    def _install_placement(self, placement: Placement) -> None:
        """Instantiate every placed PPM that has a runtime factory."""
        for switch_name in sorted(placement.assignments):
            switch = self.topo.switch(switch_name)
            for spec in placement.assignments[switch_name]:
                if spec.factory is None:
                    continue
                if switch.has_program(spec.qualified_name):
                    continue
                program = spec.factory(switch)
                program.name = spec.qualified_name
                # The scheduler already budgeted this PPM on a trial
                # ledger; the switch's real ledger enforces it again.
                switch.install_program(program)
