"""Packet-processing modules (PPMs): the unit of decomposition.

Section 3.1: a booster is decomposed into smaller *packet processing
modules* so they pack more tightly onto switches and so functionally
equivalent modules can be shared across boosters.  A :class:`PpmSpec` is
the declarative IR the analyzer and scheduler work over; the runtime
behaviour is produced by its ``factory`` when the scheduler instantiates
the module on a concrete switch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..dataplane.resources import ResourceVector


class PpmRole(enum.Enum):
    """Placement role (Section 3.2's best-effort planning distinguishes
    detection from mitigation modules)."""

    DETECTION = "detection"
    MITIGATION = "mitigation"
    #: Infrastructure modules (parsers, shared state) placed wherever a
    #: dependent module lands.
    SUPPORT = "support"


class PpmKind(enum.Enum):
    """Semantic class of the module — the primary equivalence key."""

    PARSER = "parser"
    SKETCH = "sketch"
    BLOOM = "bloom"
    HASHPIPE = "hashpipe"
    FLOW_TABLE = "flow_table"
    REGISTER = "register"
    LOGIC = "logic"          # custom match-action logic, equivalence by id


def _canonical_params(params: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Sorted (key, value) pairs, dropping implementation-detail keys.

    Keys starting with ``_`` describe *how* a booster author happened to
    write the module (variable names, code structure) and are excluded —
    this is what lets FastFlex recognize two differently-written modules
    as the same function (the paper leans on data-plane equivalence
    checking [24] for this)."""
    return tuple(sorted((k, v) for k, v in params.items()
                        if not k.startswith("_")))


@dataclass(frozen=True)
class PpmSignature:
    """Canonical semantic signature; equal signatures => shareable PPMs."""

    kind: PpmKind
    params: Tuple[Tuple[str, Any], ...]

    def __str__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.kind.value}({inner})"


@dataclass
class PpmSpec:
    """Declarative description of one packet-processing module."""

    name: str
    kind: PpmKind
    role: PpmRole
    requirement: ResourceVector
    #: Semantic parameters; ``_``-prefixed keys are implementation detail
    #: and ignored by the equivalence signature.
    params: Dict[str, Any] = field(default_factory=dict)
    #: Builds the runtime object for a switch.  Signature:
    #: ``factory(switch, instance_name) -> SwitchProgram``.  Optional for
    #: planning-only specs (analyzer/scheduler benchmarks).
    factory: Optional[Callable[..., Any]] = None
    #: Name of the booster that contributed this PPM (set by the booster).
    booster: str = ""

    def signature(self) -> PpmSignature:
        if self.kind == PpmKind.LOGIC and "logic_id" not in self.params:
            # Custom logic without a declared identity is never shareable;
            # use the fully qualified name as its identity.
            return PpmSignature(self.kind, (("logic_id", self.qualified_name),))
        return PpmSignature(self.kind, _canonical_params(self.params))

    @property
    def qualified_name(self) -> str:
        return f"{self.booster}.{self.name}" if self.booster else self.name

    def __repr__(self) -> str:
        return (f"PpmSpec({self.qualified_name!r}, {self.kind.value}, "
                f"{self.role.value}, {self.requirement})")
