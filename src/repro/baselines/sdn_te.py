"""The baseline defense: centralized SDN traffic engineering (§4.3).

"The baseline system uses an SDN controller that performs centralized TE
to reconfigure the network every 30 seconds, which is modeled after a
state-of-the-art LFA defense [Spiffy, 43]."

On every period the controller measures link utilizations, flags flooded
links, and recomputes min-max TE for *all* flows — it cannot tell attack
connections from legitimate ones (indistinguishability), so it
conservatively reroutes everything rather than dropping.  The
reconfiguration is deployed to both layers: fluid flow paths and the
switches' forwarding state (so the attacker's traceroutes observe it —
the hook the rolling attack exploits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.te import TeResult, greedy_min_max_te, rebalance_excluding_links
from ..netsim.flows import Flow
from ..netsim.fluid import FluidNetwork
from ..netsim.routing import install_flow_route, install_path_route
from ..netsim.topology import Topology
from ..telemetry import metrics, phase_timer

LinkKey = Tuple[str, str]

_MET = metrics()
_C_RECONFIGS = _MET.counter(
    "sdn_te_reconfigs_total",
    "periodic SDN-TE controller passes, by mode (steady/congested)",
    labelnames=("mode",))
_C_RECONFIG_STEADY = _C_RECONFIGS.labels("steady")
_C_RECONFIG_CONGESTED = _C_RECONFIGS.labels("congested")


@dataclass
class ReconfigRecord:
    """One controller pass (times and decisions, for experiment logs)."""

    time: float
    congested_links: List[LinkKey] = field(default_factory=list)
    max_utilization_before: float = 0.0
    max_utilization_planned: float = 0.0
    flows_rerouted: int = 0


class SdnTeDefense:
    """The periodic centralized controller."""

    def __init__(self, topo: Topology, fluid: FluidNetwork,
                 period_s: float = 30.0, k_paths: int = 4,
                 congestion_threshold: float = 0.9,
                 deploy_latency_s: float = 0.5):
        if period_s <= 0:
            raise ValueError("TE period must be positive")
        self.topo = topo
        self.fluid = fluid
        self.sim = topo.sim
        self.period_s = period_s
        self.k_paths = k_paths
        self.congestion_threshold = congestion_threshold
        #: Time between computing a configuration and it taking effect
        #: (rule installation across the network).
        self.deploy_latency_s = deploy_latency_s
        self.records: List[ReconfigRecord] = []
        self._process = None

    # ------------------------------------------------------------------
    def start(self, first_run_delay: Optional[float] = None) -> "SdnTeDefense":
        delay = self.period_s if first_run_delay is None else first_run_delay
        self._process = self.sim.every(self.period_s, self.reconfigure,
                                       start=delay)
        return self

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    # ------------------------------------------------------------------
    def reconfigure(self) -> ReconfigRecord:
        """One controller pass: measure, recompute, deploy (after the
        installation latency)."""
        now = self.sim.now
        flows = [f for f in self.fluid.flows.active(now)]
        congested = [key for key, link in self.topo.links.items()
                     if link.utilization >= self.congestion_threshold]
        max_util_before = max((link.utilization
                               for link in self.topo.links.values()),
                              default=0.0)

        # The TE pass is the controller's hot path: candidate sets come
        # from the topology's versioned route cache, so a pass over an
        # unchanged topology recomputes no shortest paths at all.  The
        # phase histogram makes that visible per run.
        with phase_timer("sdn_te.reconfigure"):
            if congested:
                _C_RECONFIG_CONGESTED.inc()
                te = rebalance_excluding_links(self.topo, flows, congested,
                                               k=self.k_paths, assign=False)
            else:
                _C_RECONFIG_STEADY.inc()
                te = greedy_min_max_te(self.topo, flows, k=self.k_paths,
                                       assign=False)

        record = ReconfigRecord(
            time=now, congested_links=sorted(congested),
            max_utilization_before=max_util_before,
            max_utilization_planned=te.max_utilization)
        self.records.append(record)
        self.sim.schedule(self.deploy_latency_s, self._deploy, te, record)
        return record

    def _deploy(self, te: TeResult, record: ReconfigRecord) -> None:
        """Push the computed configuration into the network."""
        now = self.sim.now
        flows = {f.flow_id: f for f in self.fluid.flows.active(now)}
        moved = 0
        for flow_id, path in te.paths.items():
            flow = flows.get(flow_id)
            if flow is None:
                continue
            if flow.path is None or flow.path.nodes != path.nodes:
                moved += 1
            flow.set_path(path)
            install_flow_route(self.topo, path)
        record.flows_rerouted = moved
        self._refresh_destination_routes(te, flows)

    def _refresh_destination_routes(self, te: TeResult,
                                    flows: Dict[int, Flow]) -> None:
        """Point each destination's switch tables along the path of its
        largest rerouted flow, so probe traffic (traceroute) observes the
        reconfiguration the way it would in a real SDN deployment."""
        biggest: Dict[str, Flow] = {}
        for flow_id, path in te.paths.items():
            flow = flows.get(flow_id)
            if flow is None:
                continue
            incumbent = biggest.get(flow.dst)
            if incumbent is None or flow.demand_bps > incumbent.demand_bps:
                biggest[flow.dst] = flow
        for dst, flow in biggest.items():
            if flow.path is not None:
                install_path_route(self.topo, flow.path, dst=dst)
