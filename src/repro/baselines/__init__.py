"""Baseline defenses the paper compares against."""

from .sdn_te import ReconfigRecord, SdnTeDefense

__all__ = ["ReconfigRecord", "SdnTeDefense"]
