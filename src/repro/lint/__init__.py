"""reprolint: AST-based enforcement of the repo's determinism, telemetry,
and mutation contracts.

Usage::

    python -m repro.lint [paths] [--json] [--baseline FILE]
                         [--select RPL001,...] [--ignore RPL005]

See :mod:`repro.lint.core` for the framework, :mod:`repro.lint.rules`
for the individual contracts, and DESIGN.md "Enforced invariants" for
the rule table.
"""

from .baseline import load_baseline, split_by_baseline, write_baseline
from .core import (Finding, FileContext, LintResult, Rule, all_rules,
                   lint_paths, lint_source, register, rule_codes,
                   select_rules)

__all__ = [
    "FileContext", "Finding", "LintResult", "Rule", "all_rules",
    "lint_paths", "lint_source", "load_baseline", "register",
    "rule_codes", "select_rules", "split_by_baseline", "write_baseline",
]
