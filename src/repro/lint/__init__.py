"""reprolint: AST-based enforcement of the repo's determinism, telemetry,
and mutation contracts.

Usage::

    python -m repro.lint [paths] [--project] [--json] [--baseline FILE]
                         [--select RPL001,...] [--ignore RPL005]

See :mod:`repro.lint.core` for the per-file framework and the
:class:`ProjectRule` API, :mod:`repro.lint.project` for the
whole-program layer (symbol table, import graph, AST cache),
:mod:`repro.lint.rules` for the individual contracts, and DESIGN.md
"Enforced invariants" for the rule table.
"""

from .baseline import load_baseline, split_by_baseline, write_baseline
from .core import (Finding, FileContext, LintResult, ProjectRule, Rule,
                   all_rules, lint_paths, lint_project, lint_source,
                   register, rule_codes, select_rules)
from .project import ProjectContext, ProjectFile

__all__ = [
    "FileContext", "Finding", "LintResult", "ProjectContext",
    "ProjectFile", "ProjectRule", "Rule", "all_rules", "lint_paths",
    "lint_project", "lint_source", "load_baseline", "register",
    "rule_codes", "select_rules", "split_by_baseline", "write_baseline",
]
