"""The ``python -m repro.lint`` command line.

Exit codes: 0 clean (after suppressions and baseline), 1 findings or
parse errors, 2 usage/configuration error.  ``--json`` emits one
sorted, round-trippable JSON object on stdout for tooling
(``scripts/check_lint.py`` consumes the same data via the API).

Project mode (``--project``) additionally runs the cross-module rules
(RPL007+) over the whole tree; it defaults **on** when any path
argument is a directory — a full-tree run is exactly when whole-program
contracts are checkable — and off for single-file invocations (editor
integrations), where cross-module analysis would see only a fragment.
``--no-project`` forces it off.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import load_baseline, split_by_baseline, write_baseline
from .core import Finding, all_rules, lint_paths

DEFAULT_PATHS = ["src", "scripts"]


def _parse_codes(text: Optional[str]) -> Optional[List[str]]:
    if text is None:
        return None
    return [code.strip() for code in text.split(",") if code.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based checker for the repo's determinism, "
                    "telemetry, and mutation contracts")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint "
                             "(default: src scripts)")
    parser.add_argument("--project", action="store_true", default=None,
                        dest="project",
                        help="run cross-module project rules too "
                             "(default: on when any path is a "
                             "directory)")
    parser.add_argument("--no-project", action="store_false",
                        dest="project",
                        help="per-file rules only, even on directories")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as one JSON object")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="grandfather findings listed in FILE; only "
                             "new findings fail")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite --baseline FILE from the current "
                             "findings and exit 0")
    parser.add_argument("--select", metavar="CODES", default=None,
                        help="comma-separated rule codes to run "
                             "exclusively (e.g. RPL001,RPL005)")
    parser.add_argument("--ignore", metavar="CODES", default=None,
                        help="comma-separated rule codes to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every rule and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}: {rule.description}")
        return 0
    if args.write_baseline and args.baseline is None:
        parser.error("--write-baseline requires --baseline FILE")

    paths = args.paths if args.paths else DEFAULT_PATHS
    project = args.project
    if project is None:
        project = any(Path(path).is_dir() for path in paths)
    try:
        result = lint_paths(paths, select=_parse_codes(args.select),
                            ignore=_parse_codes(args.ignore),
                            project=project)
    except ValueError as exc:  # unknown rule codes
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(args.baseline, result.findings)
        print(f"wrote {len(result.findings)} finding(s) to "
              f"{args.baseline}")
        return 0

    grandfathered: List[Finding] = []
    stale: List[str] = []
    findings = result.findings
    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        findings, grandfathered, stale = split_by_baseline(
            result.findings, baseline)

    if args.as_json:
        payload = {
            "findings": [f.to_dict() for f in findings],
            "grandfathered": len(grandfathered),
            "stale_baseline_keys": stale,
            "suppressed": result.suppressed,
            "files_checked": result.files_checked,
            "project": project,
            "parse_errors": [{"path": p, "error": e}
                             for p, e in result.parse_errors],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding)
        for path, error in result.parse_errors:
            print(f"{path}: parse error: {error}", file=sys.stderr)
        summary = (f"{len(findings)} finding(s) in "
                   f"{result.files_checked} file(s)")
        if result.suppressed:
            summary += f", {result.suppressed} suppressed inline"
        if grandfathered:
            summary += f", {len(grandfathered)} baselined"
        if stale:
            summary += (f", {len(stale)} stale baseline entr"
                        f"{'y' if len(stale) == 1 else 'ies'} "
                        f"(regenerate with --write-baseline)")
        print(summary)

    return 1 if findings or result.parse_errors else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
