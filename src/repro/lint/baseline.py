"""Baseline files: grandfathering known findings without hiding new ones.

A baseline is a committed JSON file mapping each finding's stable key
(``RULE:path:line``) to its message.  ``--baseline FILE`` subtracts
baselined findings from a run; anything *not* in the baseline still
fails, so the gate is "zero **new** findings" rather than "zero
findings" — the standard way to adopt a linter on a tree with history.

This repo's committed baseline (``reprolint_baseline.json``) is empty:
every true positive the first full run surfaced was fixed in the same
PR.  The machinery stays because future rules will land against a tree
with violations, and because tests exercise the mechanics.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple, Union

from .core import Finding

BASELINE_VERSION = 1


def load_baseline(path: Union[str, Path]) -> Dict[str, str]:
    """The key -> message map from a baseline file.

    Raises ValueError on malformed content (a truncated baseline must
    fail the gate, not silently grandfather nothing).
    """
    raw = Path(path).read_text(encoding="utf-8")
    try:
        data = json.loads(raw)
    except ValueError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from None
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(
            f"baseline {path} has no 'findings' key; "
            f"regenerate it with --write-baseline")
    findings = data["findings"]
    if not isinstance(findings, dict):
        raise ValueError(f"baseline {path}: 'findings' must be an object")
    return {str(k): str(v) for k, v in findings.items()}


def write_baseline(path: Union[str, Path],
                   findings: Sequence[Finding]) -> None:
    """Write the current findings as the new baseline (sorted keys)."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": {f.baseline_key: f.message for f in sorted(findings)},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def split_by_baseline(findings: Sequence[Finding],
                      baseline: Dict[str, str]
                      ) -> Tuple[List[Finding], List[Finding], List[str]]:
    """Partition findings against a baseline.

    Returns ``(new, grandfathered, stale_keys)`` where ``stale_keys``
    are baseline entries no longer produced — fixed or moved findings
    the baseline should be regenerated without.
    """
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    seen: Set[str] = set()
    for finding in findings:
        key = finding.baseline_key
        if key in baseline:
            grandfathered.append(finding)
            seen.add(key)
        else:
            new.append(finding)
    stale = sorted(set(baseline) - seen)
    return new, grandfathered, stale
