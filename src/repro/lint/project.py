"""Whole-program context for reprolint: the cross-module analysis layer.

Per-file rules (:class:`~repro.lint.core.Rule`) see one AST at a time,
so every contract that *spans* modules — a constant duplicated into
three files, a pipe command the worker never handles, a module-level ID
sequence the checkpoint globals segment doesn't know about — was
unenforceable before this layer existed.  :class:`ProjectContext`
parses the full ``src/`` + ``scripts/`` tree once and exposes what the
project rules (:class:`~repro.lint.core.ProjectRule`) need:

* **Module naming** — each file's dotted module name, derived by
  climbing ``__init__.py`` ancestors (``src/repro/shard/workers.py``
  → ``repro.shard.workers``; a bare script → its stem).
* **Import graph** — directed edges between *project* modules, with
  relative imports resolved (:class:`~repro.lint.rules.common
  .ImportMap` with the module name) and edges to ancestor packages
  added (importing a submodule executes the package ``__init__`` —
  Python semantics, and exactly how ``checkpoint.service`` reaches the
  booster catalog).
* **Symbol table** — top-level bindings per module, with
  :meth:`resolve_expr` evaluating literal displays through
  cross-module ``from``-imports (``WALL_CLOCK_METRICS =
  (PHASE_METRIC, ...)`` resolves to concrete strings even though
  ``PHASE_METRIC`` lives two modules away).
* **AST cache** — parses are memoized on ``(path, content-hash)``, so
  repeated project builds (editor integrations, the test suite) re-read
  bytes but re-parse only files whose content actually changed.

Everything is deterministic: files are visited in sorted path order,
graph sets are exposed through sorted accessors, and two builds over an
unchanged tree yield findings in identical order (pinned by tests).
"""

from __future__ import annotations

import ast
import hashlib
from pathlib import Path
from typing import (TYPE_CHECKING, Dict, Iterable, List, Optional,
                    Sequence, Set, Tuple)

from .core import FileContext, iter_python_files

if TYPE_CHECKING:
    # A runtime import would be circular: rules/__init__ imports the
    # project rules, which import this module for UNRESOLVED /
    # ProjectContext.  build() imports ImportMap lazily instead.
    from .rules.common import ImportMap

#: Sentinel for "this expression is not statically resolvable".
UNRESOLVED = object()

#: Parse memo: (display path, content sha256) -> parsed FileContext.
#: Keyed on content so an edited file re-parses and an untouched one is
#: returned by identity (the cache-invalidation tests pin both).
_AST_CACHE: Dict[Tuple[str, str], FileContext] = {}

_RESOLVE_DEPTH = 5


def clear_ast_cache() -> None:
    """Drop every memoized parse (test isolation hook)."""
    _AST_CACHE.clear()


def content_hash(source: str) -> str:
    """The cache key component for one file's content."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def module_name_for(path: Path) -> Tuple[str, bool]:
    """``(dotted module name, is_package)`` for a file on disk.

    Climbs parent directories while they contain ``__init__.py``, so
    the name matches what ``import`` would use with the package root on
    ``sys.path`` (``src/repro/shard/workers.py`` under a ``src`` root →
    ``repro.shard.workers``); a standalone script maps to its stem.
    """
    is_package = path.name == "__init__.py"
    if is_package:
        parts = [path.parent.name]
        current = path.parent.parent
    else:
        parts = [path.stem]
        current = path.parent
    while (current / "__init__.py").is_file():
        parts.append(current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    return ".".join(reversed(parts)), is_package


class ProjectFile:
    """One parsed file plus its project-level identity."""

    def __init__(self, path: Path, module: str, is_package: bool,
                 digest: str, ctx: FileContext,
                 imports: "ImportMap") -> None:
        self.path = path
        self.module = module
        self.is_package = is_package
        self.content_hash = digest
        self.ctx = ctx
        self.imports = imports

    @property
    def display_path(self) -> str:
        return self.ctx.display_path


def _ancestors(module: str) -> Iterable[str]:
    parts = module.split(".")
    for end in range(1, len(parts)):
        yield ".".join(parts[:end])


class ProjectContext:
    """The whole parsed tree: modules, import graph, symbol table."""

    def __init__(self, files: List[ProjectFile],
                 parse_errors: List[Tuple[str, str]]) -> None:
        self.files = sorted(files, key=lambda f: f.display_path)
        self.parse_errors = parse_errors
        #: dotted module name -> file (first in path order on collision).
        self.modules: Dict[str, ProjectFile] = {}
        for pf in self.files:
            self.modules.setdefault(pf.module, pf)
        self._by_path: Dict[str, ProjectFile] = {
            pf.display_path: pf for pf in self.files}
        self._imports: Dict[str, Set[str]] = {}
        self._importers: Dict[str, Set[str]] = {}
        self._build_graph()
        self._constants: Dict[Tuple[str, str], object] = {}

    # -- construction ---------------------------------------------------
    @classmethod
    def build(cls, paths: Sequence[str]) -> "ProjectContext":
        """Parse every Python file under ``paths`` (memoized)."""
        from .rules.common import ImportMap
        files: List[ProjectFile] = []
        parse_errors: List[Tuple[str, str]] = []
        for path in iter_python_files(paths):
            display = path.as_posix()
            try:
                source = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                parse_errors.append((display, str(exc)))
                continue
            digest = content_hash(source)
            ctx = _AST_CACHE.get((display, digest))
            if ctx is None:
                try:
                    ctx = FileContext.from_source(source, display)
                except SyntaxError as exc:
                    parse_errors.append((display, str(exc)))
                    continue
                _AST_CACHE[(display, digest)] = ctx
            module, is_package = module_name_for(path)
            files.append(ProjectFile(
                path, module, is_package, digest, ctx,
                ImportMap(ctx.tree, module=module, is_package=is_package)))
        return cls(files, parse_errors)

    # -- lookups --------------------------------------------------------
    def file_for(self, display_path: str) -> Optional[ProjectFile]:
        return self._by_path.get(display_path)

    # -- import graph ---------------------------------------------------
    def _project_target(self, dotted: str) -> Optional[str]:
        """The longest prefix of ``dotted`` that is a project module
        (``repro.netsim.flows.FlowSet`` → ``repro.netsim.flows``)."""
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                return candidate
        return None

    def _build_graph(self) -> None:
        for pf in self.files:
            edges: Set[str] = set()
            targets = list(pf.imports.imported)
            # `from pkg import sub` may bind a submodule, not an attr;
            # the longest-prefix lookup keeps whichever actually exists.
            targets.extend(f"{module}.{symbol}" for module, symbol
                           in pf.imports.symbols.values())
            for dotted in targets:
                target = self._project_target(dotted)
                if target is None or target == pf.module:
                    continue
                edges.add(target)
                # Importing a submodule executes its ancestor package
                # __init__ files; model those edges explicitly.
                for ancestor in _ancestors(target):
                    if ancestor in self.modules \
                            and ancestor != pf.module:
                        edges.add(ancestor)
            self._imports[pf.module] = edges
            for target in edges:
                self._importers.setdefault(target, set()).add(pf.module)

    def imports_of(self, module: str) -> List[str]:
        """Project modules ``module`` imports, sorted."""
        return sorted(self._imports.get(module, ()))

    def importers_of(self, module: str) -> List[str]:
        """Project modules that import ``module``, sorted."""
        return sorted(self._importers.get(module, ()))

    def closure(self, roots: Iterable[str]) -> Set[str]:
        """Modules reachable from ``roots`` through import edges, with
        the implicit module→ancestor-package edges Python's import
        machinery adds (importing ``a.b.c`` executes ``a`` and
        ``a.b``)."""
        seen: Set[str] = set()
        stack = [root for root in sorted(set(roots))
                 if root in self.modules]
        while stack:
            module = stack.pop()
            if module in seen:
                continue
            seen.add(module)
            neighbors: Set[str] = set(self._imports.get(module, ()))
            neighbors.update(ancestor for ancestor in _ancestors(module)
                             if ancestor in self.modules)
            stack.extend(sorted(neighbors - seen))
        return seen

    # -- symbol table ---------------------------------------------------
    def module_assignments(self, module: str) -> Dict[str, ast.expr]:
        """Top-level single-name assignments of ``module`` (last wins,
        matching runtime rebinding)."""
        pf = self.modules.get(module)
        if pf is None:
            return {}
        out: Dict[str, ast.expr] = {}
        for node in pf.ctx.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                out[node.targets[0].id] = node.value
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name) \
                    and node.value is not None:
                out[node.target.id] = node.value
        return out

    def resolve_constant(self, module: str, name: str,
                         depth: int = 0) -> object:
        """The concrete value of ``module.name``: a local top-level
        literal, or one followed through project ``from``-imports.
        Returns :data:`UNRESOLVED` when no literal value is derivable.
        """
        if depth > _RESOLVE_DEPTH:
            return UNRESOLVED
        key = (module, name)
        if depth == 0 and key in self._constants:
            return self._constants[key]
        pf = self.modules.get(module)
        value: object = UNRESOLVED
        if pf is not None:
            assigned = self.module_assignments(module).get(name)
            if assigned is not None:
                value = self.resolve_expr(module, assigned, depth + 1)
            else:
                imported = pf.imports.symbols.get(name)
                if imported is not None:
                    origin, symbol = imported
                    target = self._project_target(origin)
                    if target is not None:
                        value = self.resolve_constant(target, symbol,
                                                      depth + 1)
        if depth == 0:
            self._constants[key] = value
        return value

    def resolve_expr(self, module: str, node: ast.expr,
                     depth: int = 0) -> object:
        """Evaluate a literal display, following Name references through
        the cross-module symbol table; :data:`UNRESOLVED` on anything
        dynamic."""
        if depth > _RESOLVE_DEPTH:
            return UNRESOLVED
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            return self.resolve_constant(module, node.id, depth + 1)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            items = [self.resolve_expr(module, elt, depth + 1)
                     for elt in node.elts]
            if any(item is UNRESOLVED for item in items):
                return UNRESOLVED
            if isinstance(node, ast.Set):
                try:
                    return frozenset(items)
                except TypeError:
                    return UNRESOLVED
            return tuple(items)
        if isinstance(node, ast.Dict):
            out: Dict[object, object] = {}
            for key_node, value_node in zip(node.keys, node.values):
                if key_node is None:  # ** splat
                    return UNRESOLVED
                key = self.resolve_expr(module, key_node, depth + 1)
                value = self.resolve_expr(module, value_node, depth + 1)
                if key is UNRESOLVED or value is UNRESOLVED:
                    return UNRESOLVED
                try:
                    out[key] = value
                except TypeError:
                    return UNRESOLVED
            # Canonical, order-independent, hash-free dict form: equal
            # dicts resolve equal whatever their source key order.
            return tuple(sorted(((repr(k), v) for k, v in out.items()),
                                key=lambda kv: kv[0]))
        return UNRESOLVED
