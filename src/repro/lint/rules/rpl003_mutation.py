"""RPL003 — Topology/Link state mutates only through their APIs.

The routing-cache and fluid-allocator contracts (DESIGN.md "Routing
cache", "Incremental fluid allocator") key every cached artifact on
``Topology.version``.  The version only advances inside the sanctioned
mutators — ``add_*``/``remove_*``/``set_capacity``/``set_down``/
``set_up`` — so writing ``link.capacity_bps = x`` or ``topo.links[k] =
l`` from anywhere else serves stale SSSP trees and stale allocations
without any error.  This rule flags direct writes to the guarded fields
and container attributes everywhere except the modules that implement
the contract (topology.py, links.py, node.py).

Heuristic by design: the check is name-based (any ``.capacity_bps =``
assignment), not type-based — a dependency-free AST pass cannot infer
types, and the guarded names are specific enough that a false positive
means a *confusingly named* field, which is worth flagging anyway.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from ..core import FileContext, Finding, Rule, register

#: Scalar fields whose writes must advance Topology.version.
GUARDED_FIELDS = frozenset(
    {"capacity_bps", "delay_s", "queue_bytes", "up", "version"})
#: Container attributes owned by Topology (and Node adjacency).
GUARDED_MAPS = frozenset({"links", "nodes"})
#: Mutating dict methods on the guarded containers.
_MUTATING_METHODS = frozenset(
    {"pop", "popitem", "clear", "update", "setdefault"})

_FIELD_HINTS = {
    "capacity_bps": "Link.set_capacity()",
    "delay_s": "a new Topology.add_duplex_link()",
    "queue_bytes": "the Link constructor (queue_bytes=...)",
    "up": "Link.set_down()/set_up()",
    "version": "the Topology mutator methods (version is owned state)",
}


def _guarded_map(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and node.attr in GUARDED_MAPS


@register
class DirectMutationRule(Rule):
    code = "RPL003"
    name = "direct-topology-mutation"
    description = ("direct writes to Topology/Link state bypass version "
                   "bumps and serve stale RouteCache/fluid allocations")
    exempt_paths: Tuple[str, ...] = (
        "repro/netsim/topology.py",
        "repro/netsim/links.py",
        "repro/netsim/node.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    yield from self._check_target(ctx, target)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) \
                            and _guarded_map(target.value):
                        yield self.finding(
                            ctx, target,
                            f"del on .{target.value.attr}[...] bypasses "  # type: ignore[attr-defined]
                            f"Topology.remove_link()/remove_switch() and "
                            f"leaves Topology.version stale")
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATING_METHODS \
                    and _guarded_map(node.func.value):
                attr = node.func.value.attr  # type: ignore[attr-defined]
                yield self.finding(
                    ctx, node,
                    f".{attr}.{node.func.attr}(...) mutates Topology "
                    f"state behind the version counter; use the Topology "
                    f"mutator methods")

    def _check_target(self, ctx: FileContext,
                      target: ast.AST) -> Iterator[Finding]:
        if isinstance(target, ast.Attribute) \
                and target.attr in GUARDED_FIELDS:
            # Constructor self-writes are the implementation's own
            # business and live in the exempt modules; outside them any
            # write is a bypass.
            yield self.finding(
                ctx, target,
                f"direct write to .{target.attr} bypasses "
                f"{_FIELD_HINTS[target.attr]}; cached routing/fluid "
                f"state keyed on Topology.version goes stale")
        elif isinstance(target, ast.Subscript) \
                and _guarded_map(target.value):
            yield self.finding(
                ctx, target,
                f"subscript write to .{target.value.attr}[...] bypasses "  # type: ignore[attr-defined]
                f"the Topology mutators (add_duplex_link/remove_link/"
                f"add_switch/remove_switch)")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._check_target(ctx, element)
