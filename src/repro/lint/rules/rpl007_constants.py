"""RPL007 — a constant defined near-identically in two modules will drift.

The ``WALL_CLOCK_METRICS`` exclusion list was hand-copied from
``sweep/runner.py`` into ``scripts/check_restore.py`` and
``scripts/check_sweep.py`` — three literals that must agree for the
determinism gates to mean anything, kept in sync only by a runtime
assert and a comment.  That is exactly the coordinator/worker drift
class the distributed layers are most exposed to: the copies agree
today and silently diverge the day one of them gains an entry.

The check: every module-level ``ALL_CAPS = <literal display>``
assignment is resolved to a concrete value through the project symbol
table (cross-module ``from``-imports included, so ``(PHASE_METRIC,
"shard_barrier_seconds")`` and ``("phase_duration_seconds",
"shard_barrier_seconds")`` compare equal).  The same name bound to the
same resolved value in two or more modules is flagged at every site.
The fix is the one the rule's message names: define it once, export it,
import it everywhere else — an ``import`` is not a definition and never
flags.  Trivial one-element literals are ignored.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Tuple

from ..core import Finding, ProjectRule, register
from ..project import UNRESOLVED, ProjectContext, ProjectFile

_CONST_NAME = re.compile(r"^[A-Z][A-Z0-9_]{2,}$")

#: Resolved containers smaller than this cannot meaningfully "drift".
_MIN_ITEMS = 2


def _sized(value: object) -> bool:
    return isinstance(value, (tuple, frozenset)) \
        and len(value) >= _MIN_ITEMS


@register
class DuplicatedConstantRule(ProjectRule):
    code = "RPL007"
    name = "duplicated-constant"
    description = ("the same ALL_CAPS literal defined in several modules "
                   "drifts silently; define it once and import it")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        groups: Dict[Tuple[str, str],
                     List[Tuple[ProjectFile, ast.stmt]]] = {}
        for pf in project.files:
            if project.modules.get(pf.module) is not pf:
                continue  # shadowed duplicate module name
            for node in pf.ctx.tree.body:
                target = _constant_target(node)
                if target is None:
                    continue
                name, value_node = target
                if not isinstance(value_node,
                                  (ast.Tuple, ast.List, ast.Set, ast.Dict)):
                    continue
                value = project.resolve_expr(pf.module, value_node)
                if value is UNRESOLVED or not _sized(value):
                    continue
                groups.setdefault((name, repr(value)), []).append(
                    (pf, node))
        for (name, _canon), sites in sorted(
                groups.items(), key=lambda item: item[0]):
            modules = sorted({pf.module for pf, _node in sites})
            if len(modules) < _MIN_ITEMS:
                continue
            for pf, node in sites:
                others = ", ".join(m for m in modules if m != pf.module)
                yield self.file_finding(
                    pf, node,
                    f"constant {name} is defined with the same value in "
                    f"{len(modules)} modules (also in {others}); define "
                    f"it once and import it — duplicated literals drift "
                    f"silently")


def _constant_target(
        node: ast.stmt) -> Optional[Tuple[str, ast.expr]]:
    if isinstance(node, ast.Assign) and len(node.targets) == 1 \
            and isinstance(node.targets[0], ast.Name):
        name = node.targets[0].id
        if _CONST_NAME.match(name):
            return name, node.value
    elif isinstance(node, ast.AnnAssign) \
            and isinstance(node.target, ast.Name) \
            and node.value is not None \
            and _CONST_NAME.match(node.target.id):
        return node.target.id, node.value
    return None
