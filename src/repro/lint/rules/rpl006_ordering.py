"""RPL006 — don't iterate sets where the order can materialize.

Set iteration order depends on string hash randomization, so it differs
between processes unless ``PYTHONHASHSEED`` is pinned — which sweep
workers do not guarantee.  A ``for`` loop over a bare ``set()`` (or a
set union, or ``dict.keys()`` piped through sets) that feeds RNG draws,
emitted series, dict insertion order, or file output makes byte-
identical parallel sweeps impossible (DESIGN.md "Sweep runner"
determinism contract).  The fix is one ``sorted(...)`` at the iteration
site.

The check is conservative: iteration contexts that cannot leak order —
``sum``/``len``/``min``/``max``/``any``/``all``/``set``/``frozenset``/
``sorted`` consumers, and set-comprehension results — are not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..core import FileContext, Finding, Rule, register

#: Consumers for which the argument's iteration order is immaterial.
_ORDER_INSENSITIVE = frozenset(
    {"sum", "len", "min", "max", "any", "all", "set", "frozenset",
     "sorted"})
#: Order-materializing constructors fed directly by an unordered expr.
_ORDER_SENSITIVE = frozenset({"list", "tuple", "enumerate"})

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)


def _is_unordered(node: ast.expr) -> bool:
    """True when ``node`` syntactically evaluates to a set / keys view."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) \
                and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return _is_unordered(node.left) or _is_unordered(node.right)
    return False


@register
class UnorderedIterationRule(Rule):
    code = "RPL006"
    name = "unordered-iteration"
    description = ("iterating a bare set()/dict.keys() leaks hash-"
                   "randomized order into results; wrap in sorted(...)")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        blessed: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id in _ORDER_INSENSITIVE:
                blessed.update(id(arg) for arg in node.args)

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) \
                    and id(node.iter) not in blessed \
                    and _is_unordered(node.iter):
                yield self.finding(
                    ctx, node.iter,
                    "for-loop over an unordered set/keys expression; "
                    "iteration order is hash-randomized across "
                    "processes — wrap in sorted(...)")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp)) \
                    and id(node) not in blessed:
                for gen in node.generators:
                    if _is_unordered(gen.iter):
                        yield self.finding(
                            ctx, gen.iter,
                            "comprehension over an unordered set/keys "
                            "expression materializes hash-randomized "
                            "order — wrap in sorted(...)")
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id in _ORDER_SENSITIVE \
                    and node.args and _is_unordered(node.args[0]):
                yield self.finding(
                    ctx, node,
                    f"{node.func.id}() of an unordered set/keys "
                    f"expression materializes hash-randomized order — "
                    f"wrap the argument in sorted(...)")
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "join" \
                    and node.args and _is_unordered(node.args[0]):
                yield self.finding(
                    ctx, node,
                    "join() over an unordered set/keys expression "
                    "produces a hash-randomized string — wrap the "
                    "argument in sorted(...)")
