"""RPL004 — telemetry registrations keep the merge contract.

``MetricsRegistry.merge()`` folds per-worker snapshots into one sweep-
level view and is only partition-independent when every call site
registers families identically (PR 3's isolation fixes).  Three naming
rules make that hold statically:

* counter names end in ``_total`` — the convention every existing
  family follows and the marker aggregation relies on to distinguish
  monotonic families;
* histograms declare explicit ``buckets=`` bounds — merge requires
  bound-for-bound equality, so bounds must be visible at the call site,
  not inherited from a default that could drift;
* ``labelnames`` are literal tuples/lists of string literals — a
  computed label set could differ between workers, splitting one family
  into unmergeable variants.

Metric *names* must be string literals for the same reason.  The
registry implementation itself (``telemetry/registry.py``) is exempt:
``merge()`` legitimately re-creates families from snapshot-carried
names and labels.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

from ..core import FileContext, Finding, Rule, register
from .common import iter_calls

_FACTORIES = ("counter", "gauge", "histogram")


def _kwarg(call: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _literal_str(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _module_string_constants(tree: ast.Module) -> dict:
    """Module-level ``NAME = "literal"`` bindings.

    A metric named by such a constant is as statically known as an
    inline literal (timers.py names its family via ``PHASE_METRIC`` so
    the sweep runner can import the same constant for its wall-clock
    exclusion list).
    """
    consts: Dict[str, str] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            value = _literal_str(stmt.value)
            if value is not None:
                consts[stmt.targets[0].id] = value
    return consts


@register
class TelemetryNamingRule(Rule):
    code = "RPL004"
    name = "telemetry-naming"
    description = ("metric registrations must be statically mergeable: "
                   "literal names, _total counters, explicit histogram "
                   "bounds, literal label tuples")
    exempt_paths: Tuple[str, ...] = ("repro/telemetry/registry.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        consts = _module_string_constants(ctx.tree)
        for call in iter_calls(ctx.tree):
            if not isinstance(call.func, ast.Attribute) \
                    or call.func.attr not in _FACTORIES:
                continue
            kind = call.func.attr
            yield from self._check_name(ctx, call, kind, consts)
            yield from self._check_labelnames(ctx, call, kind)
            if kind == "histogram":
                yield from self._check_buckets(ctx, call)

    def _check_name(self, ctx: FileContext, call: ast.Call,
                    kind: str, consts: dict) -> Iterator[Finding]:
        name_node = call.args[0] if call.args else _kwarg(call, "name")
        if name_node is None:
            return  # not a registry call shape; stay quiet
        name = _literal_str(name_node)
        if name is None and isinstance(name_node, ast.Name):
            name = consts.get(name_node.id)
        if name is None:
            yield self.finding(
                ctx, call,
                f"{kind}() metric name must be a string literal so the "
                f"family set is identical in every worker")
            return
        if kind == "counter" and not name.endswith("_total"):
            yield self.finding(
                ctx, call,
                f"counter {name!r} must end in '_total' (monotonic-"
                f"family naming convention; see DESIGN.md Telemetry)")

    def _check_labelnames(self, ctx: FileContext, call: ast.Call,
                          kind: str) -> Iterator[Finding]:
        labels = _kwarg(call, "labelnames")
        if labels is None and len(call.args) >= 3:
            labels = call.args[2]
        if labels is None:
            return
        if not isinstance(labels, (ast.Tuple, ast.List)) or not all(
                _literal_str(e) is not None for e in labels.elts):
            yield self.finding(
                ctx, call,
                f"{kind}() labelnames must be a literal tuple/list of "
                f"string literals; computed label sets can differ "
                f"between workers and break MetricsRegistry.merge()")

    def _check_buckets(self, ctx: FileContext,
                       call: ast.Call) -> Iterator[Finding]:
        if _kwarg(call, "buckets") is None and len(call.args) < 4:
            yield self.finding(
                ctx, call,
                "histogram() must declare explicit buckets= bounds; "
                "merge() requires bound-for-bound equality across "
                "workers, so bounds belong at the registration site")
