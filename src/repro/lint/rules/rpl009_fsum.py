"""RPL009 — float folds in shard/sweep aggregation must use math.fsum.

The sharded engine's parity contract (DESIGN.md, PR 8–9) hinges on one
numeric fact: ``math.fsum`` is correctly rounded and therefore
order-independent, while ``sum()`` and ``+=`` accumulate rounding error
in whatever order the samples arrive — and in the shard/sweep layers
that order depends on worker scheduling.  A naive fold over
cross-process-collected float series is a parity bug that only shows up
as a one-ulp drift between the sharded and single-process runs, the
worst kind of failure to bisect.

Within aggregation modules (any file under a ``shard/`` or ``sweep/``
directory, or whose module docstring names ``fsum``) the rule flags:

* ``sum(...)`` calls — unless the iterable is provably integral (a
  comprehension whose element is a ``len(...)`` call or an int
  literal), counting things is fine;
* ``name += ...`` inside a loop when ``name`` was initialized to a
  float literal (``total = 0.0`` ... ``total += sample``).

The fix is the keystone the docstrings document: ``math.fsum(series)``
(or collect into a list and fold once).  Integer accumulators and
non-aggregation modules are out of scope.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from ..core import FileContext, Finding, Rule, register

_PATH_FRAGMENTS = ("/shard/", "/sweep/")


def _is_aggregation_module(ctx: FileContext) -> bool:
    posix = ctx.display_path
    if any(fragment in f"/{posix}" for fragment in _PATH_FRAGMENTS):
        return True
    doc = ast.get_docstring(ctx.tree) or ""
    return "fsum" in doc


def _int_blessed(arg: ast.expr) -> bool:
    """True when the iterable fed to ``sum`` is provably integral."""
    if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
        elt = arg.elt
        if isinstance(elt, ast.Call) and isinstance(elt.func, ast.Name) \
                and elt.func.id == "len":
            return True
        if isinstance(elt, ast.Constant) and isinstance(elt.value, int) \
                and not isinstance(elt.value, bool):
            return True
        # `1 if cond else 0` — counting via a conditional.
        if isinstance(elt, ast.IfExp) \
                and isinstance(elt.body, ast.Constant) \
                and isinstance(elt.body.value, int):
            return True
    return False


def _float_names(tree: ast.Module) -> Set[str]:
    """Names anywhere in the file initialized to a float literal."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, float):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


@register
class FsumParityRule(Rule):
    code = "RPL009"
    name = "parity-unsafe-fold"
    description = ("float accumulation in shard/sweep aggregation must "
                   "use math.fsum — sum()/+= folds are order-dependent "
                   "and break cross-process parity")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _is_aggregation_module(ctx):
            return
        float_names = _float_names(ctx.tree)
        loop_depth = 0
        for node, entering in _walk_loops(ctx.tree):
            if entering is not None:
                loop_depth += 1 if entering else -1
                continue
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id == "sum" \
                    and node.args and not _int_blessed(node.args[0]):
                yield self.finding(
                    ctx, node,
                    "sum() over a float series is order-dependent and "
                    "breaks shard parity; use math.fsum (or bless an "
                    "integer count with a len()/int-literal "
                    "comprehension)")
            elif isinstance(node, ast.AugAssign) and loop_depth > 0 \
                    and isinstance(node.op, ast.Add) \
                    and isinstance(node.target, ast.Name) \
                    and node.target.id in float_names:
                yield self.finding(
                    ctx, node,
                    f"float accumulator {node.target.id!r} grows with "
                    f"+= inside a loop; collect the series and fold "
                    f"once with math.fsum for order-independent parity")


def _walk_loops(
        tree: ast.Module) -> Iterator[Tuple[ast.AST, Optional[bool]]]:
    """Pre-order walk that brackets loop bodies with enter/exit
    markers: yields ``(node, None)`` for every node, ``(node, True)``
    before a loop body and ``(node, False)`` after it."""
    def visit(node: ast.AST) -> Iterator[Tuple[ast.AST, Optional[bool]]]:
        yield node, None
        is_loop = isinstance(node, (ast.For, ast.While, ast.AsyncFor))
        if is_loop:
            yield node, True
        for child in ast.iter_child_nodes(node):
            yield from visit(child)
        if is_loop:
            yield node, False
    yield from visit(tree)
