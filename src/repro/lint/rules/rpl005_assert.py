"""RPL005 — ``assert`` is not a guard in library code.

``python -O`` strips every assert, so an invariant "enforced" by one is
enforced only in the configurations nobody benchmarks.  In ``src/repro``
an impossible state must raise a real exception (``ValueError`` /
``RuntimeError``) carrying a message a sweep error record can surface.
Tests are unaffected: pytest rewrites asserts and never runs under
``-O``, and the CI lint gate only checks ``src``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import FileContext, Finding, Rule, register


@register
class AssertRule(Rule):
    code = "RPL005"
    name = "assert-as-guard"
    description = ("assert statements are stripped under python -O and "
                   "are not real guards in library code")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    ctx, node,
                    "assert is stripped under python -O; raise "
                    "ValueError/RuntimeError with a real message "
                    "instead")
