"""Rule modules; importing this package registers every rule.

Each module guards one written-down contract (see DESIGN.md "Enforced
invariants" for the rule/contract/escape-hatch table).  Adding a rule
is: new module here with a ``@register``-decorated :class:`~repro.lint
.core.Rule` subclass, paired good/bad fixtures under
``tests/lint/fixtures/``, and a DESIGN.md row.
"""

from . import (  # noqa: F401
    rpl001_randomness,
    rpl002_wallclock,
    rpl003_mutation,
    rpl004_telemetry,
    rpl005_assert,
    rpl006_ordering,
    rpl007_constants,
    rpl008_protocol,
    rpl009_fsum,
    rpl010_checkpoint,
)
