"""RPL008 — every pipe command sent must be handled, and vice versa.

The shard layer speaks a string-dispatch protocol over worker pipes:
the coordinator sends ``("build", region)`` / ``("stats",)`` tuples and
``region_worker_main`` dispatches on ``kind = message[0]`` through a
``kind == "..."`` chain.  Nothing ties the two ends together — add a
command on one side, forget the other, and the failure is a worker
hanging on an unknown message (or a dead dispatch arm that silently
stops being exercised).  That coordinator/worker drift is the classic
silent-corruption bug of distributed emulation splits.

Both directions flag:

* a command **sent** somewhere in the handler's module (or a module
  that imports it) with no matching dispatch arm — flagged at the send
  site;
* a dispatch **arm** whose command is never sent — flagged at the
  comparison.

A *handler* is any function that assigns ``<something>.recv()`` to a
name and compares index ``[0]`` of it (directly or through an alias
like ``kind = message[0]``) against two or more string literals.  A
*send* is a tuple display whose first element is a string literal,
passed (directly or inside a ``lambda`` body) to a call whose final
attribute name contains ``send`` or ``fan``.  Tuples built inside the
handler function itself are replies, not commands, and are ignored.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..core import Finding, ProjectRule, register
from ..project import ProjectContext, ProjectFile

_MIN_ARMS = 2


def _recv_names(func: ast.FunctionDef) -> Set[str]:
    """Names assigned from a ``.recv()`` call inside ``func``."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Call) \
                and isinstance(node.value.func, ast.Attribute) \
                and node.value.func.attr == "recv":
            names.add(node.targets[0].id)
    return names


def _is_head_subscript(node: ast.expr, messages: Set[str]) -> bool:
    """``message[0]`` for a recv-assigned ``message``."""
    return (isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in messages
            and isinstance(node.slice, ast.Constant)
            and node.slice.value == 0)


def _kind_aliases(func: ast.FunctionDef, messages: Set[str]) -> Set[str]:
    """Names assigned from ``message[0]`` (``kind = message[0]``)."""
    aliases: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and _is_head_subscript(node.value, messages):
            aliases.add(node.targets[0].id)
    return aliases


def _dispatch_arms(func: ast.FunctionDef) -> Dict[str, ast.Compare]:
    """Command string -> the ``kind == "..."`` comparison node."""
    messages = _recv_names(func)
    if not messages:
        return {}
    aliases = _kind_aliases(func, messages)
    arms: Dict[str, ast.Compare] = {}
    for node in ast.walk(func):
        if not (isinstance(node, ast.Compare) and len(node.ops) == 1
                and isinstance(node.ops[0], ast.Eq)
                and isinstance(node.comparators[0], ast.Constant)
                and isinstance(node.comparators[0].value, str)):
            continue
        left = node.left
        if (isinstance(left, ast.Name) and left.id in aliases) \
                or _is_head_subscript(left, messages):
            arms.setdefault(node.comparators[0].value, node)
    return arms


def _send_callee(call: ast.Call) -> bool:
    func = call.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else "")
    lowered = name.lower()
    return "send" in lowered or "fan" in lowered


def _command_tuple(node: ast.expr) -> Optional[Tuple[str, ast.expr]]:
    """``("build", ...)`` directly or as a lambda body."""
    if isinstance(node, ast.Lambda):
        node = node.body
    if isinstance(node, ast.Tuple) and node.elts \
            and isinstance(node.elts[0], ast.Constant) \
            and isinstance(node.elts[0].value, str):
        return node.elts[0].value, node
    return None


def _sent_commands(pf: ProjectFile) -> List[Tuple[str, ast.expr]]:
    """Every ``(command, tuple-node)`` passed to a send/fan call."""
    sends: List[Tuple[str, ast.expr]] = []
    for node in ast.walk(pf.ctx.tree):
        if not (isinstance(node, ast.Call) and _send_callee(node)):
            continue
        for arg in node.args:
            command = _command_tuple(arg)
            if command is not None:
                sends.append(command)
    return sends


def _inside(node: ast.expr, func: ast.FunctionDef) -> bool:
    line = getattr(node, "lineno", 0)
    end = getattr(func, "end_lineno", func.lineno)
    return func.lineno <= line <= end


@register
class PipeProtocolRule(ProjectRule):
    code = "RPL008"
    name = "pipe-protocol"
    description = ("string commands sent over worker pipes must match "
                   "the receiving dispatch arms exactly — unhandled "
                   "sends and unsent handlers both flag")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for pf in project.files:
            if project.modules.get(pf.module) is not pf:
                continue
            for node in pf.ctx.tree.body:
                if not isinstance(node, ast.FunctionDef):
                    continue
                arms = _dispatch_arms(node)
                if len(arms) < _MIN_ARMS:
                    continue
                yield from self._check_handler(project, pf, node, arms)

    def _check_handler(self, project: ProjectContext, handler_pf:
                       ProjectFile, handler: ast.FunctionDef,
                       arms: Dict[str, ast.Compare]) -> Iterator[Finding]:
        related = [handler_pf.module] + project.importers_of(
            handler_pf.module)
        sent: Dict[str, List[Tuple[ProjectFile, ast.expr]]] = {}
        for module in related:
            pf = project.modules.get(module)
            if pf is None:
                continue
            for command, tuple_node in _sent_commands(pf):
                if pf is handler_pf and _inside(tuple_node, handler):
                    continue  # replies from inside the handler
                sent.setdefault(command, []).append((pf, tuple_node))
        if not sent:
            return  # no peer in the tree sends to this handler
        handler_name = f"{handler_pf.module}.{handler.name}"
        for command in sorted(set(sent) - set(arms)):
            for pf, tuple_node in sent[command]:
                yield self.file_finding(
                    pf, tuple_node,
                    f"pipe command {command!r} is sent but has no "
                    f"dispatch arm in {handler_name}; the worker "
                    f"cannot handle it")
        for command in sorted(set(arms) - set(sent)):
            yield self.file_finding(
                handler_pf, arms[command],
                f"dispatch arm for {command!r} in {handler_name} is "
                f"never sent by any peer module; dead protocol arms "
                f"hide drift")
