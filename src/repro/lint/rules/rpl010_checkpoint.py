"""RPL010 — state reachable from checkpoint roots must be picklable.

The checkpoint format (PR 9) pickles everything ``pack_state`` /
``save_checkpoint`` reach, plus a globals segment that re-seats the
module-level ``itertools.count`` ID sequences listed in
``GLOBAL_SEQUENCES``.  Two failure modes slip past per-file analysis:

* an object in the import closure of a checkpointing module grows an
  unpicklable attribute — a ``lambda`` default, an ``open()`` handle,
  a live generator — and the first ``save`` after that change dies (or
  worse, the restore silently rebuilds different behavior);
* someone adds a module-level ``itertools.count`` sequence without
  registering it, so restored runs re-issue IDs from zero and the
  byte-identity gate fails a window later.

The rule therefore works from the *project*: the checkpoint scope is
the import closure of every module that calls ``pack_state`` /
``save_checkpoint`` / ``snapshot``.  Inside that scope it flags

* ``lambda`` values bound to ``self.<attr>``, class-level, or
  module-level names (closures don't pickle);
* ``open(...)`` calls bound to ``self.<attr>`` or module level (file
  handles don't pickle; locals are fine — they die with the frame);
* generator expressions bound the same way (generators don't pickle);
* module-level ``itertools.count(...)`` assignments in scope whose
  ``(module, attr)`` pair is missing from ``GLOBAL_SEQUENCES``.

Modules that *implement* the machinery (checkpoint, telemetry, lint
itself) are exempt — they own the contract.  Projects with no
``GLOBAL_SEQUENCES`` definition skip the registry check entirely.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..core import Finding, ProjectRule, register
from ..project import UNRESOLVED, ProjectContext, ProjectFile

_ROOT_CALLS = ("pack_state", "save_checkpoint", "snapshot")


def _root_modules(project: ProjectContext) -> List[str]:
    roots: List[str] = []
    for pf in project.files:
        if project.modules.get(pf.module) is not pf:
            continue
        for node in ast.walk(pf.ctx.tree):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name in _ROOT_CALLS:
                    roots.append(pf.module)
                    break
    return roots


def _call_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _registered_sequences(
        project: ProjectContext) -> Optional[Set[Tuple[str, str]]]:
    """The ``(module, attr)`` pairs in the project's GLOBAL_SEQUENCES
    registry, or None when no project module defines one."""
    for pf in project.files:
        value_node = project.module_assignments(pf.module).get(
            "GLOBAL_SEQUENCES")
        if value_node is None:
            continue
        value = project.resolve_expr(pf.module, value_node)
        if value is UNRESOLVED or not isinstance(value, tuple):
            return set()
        pairs: Set[Tuple[str, str]] = set()
        for entry in value:
            if isinstance(entry, tuple) and len(entry) == 2 \
                    and all(isinstance(part, str) for part in entry):
                pairs.add((entry[0], entry[1]))
        return pairs
    return None


def _is_itertools_count(node: ast.expr, pf: ProjectFile) -> bool:
    if not isinstance(node, ast.Call):
        return False
    resolved = pf.imports.resolve_call(node.func)
    return resolved == ("itertools", "count")


def _unpicklable_kind(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Lambda):
        return "a lambda"
    if isinstance(node, ast.GeneratorExp):
        return "a generator expression"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id == "open":
        return "an open() handle"
    return None


def _iter_bindings(tree: ast.Module) -> Iterator[
        Tuple[str, ast.expr, ast.stmt]]:
    """``(where, value, stmt)`` for module-level, class-level, and
    ``self.<attr>`` assignments — the bindings a pickle walk reaches."""
    for node in tree.body:
        for value, stmt in _simple_assigns(node):
            yield "module level", value, stmt
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                for value, stmt in _simple_assigns(item):
                    yield f"class {node.name}", value, stmt
            for item in ast.walk(node):
                if isinstance(item, ast.Assign) \
                        and len(item.targets) == 1 \
                        and isinstance(item.targets[0], ast.Attribute) \
                        and isinstance(item.targets[0].value, ast.Name) \
                        and item.targets[0].value.id == "self":
                    yield (f"self.{item.targets[0].attr}",
                           item.value, item)


def _simple_assigns(node: ast.stmt) -> Iterator[
        Tuple[ast.expr, ast.stmt]]:
    if isinstance(node, ast.Assign):
        yield node.value, node
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        yield node.value, node


@register
class CheckpointSafetyRule(ProjectRule):
    code = "RPL010"
    name = "checkpoint-safety"
    description = ("state reachable from pack_state/save_checkpoint "
                   "roots must pickle: no lambda/open()/generator "
                   "bindings, and module-level itertools.count "
                   "sequences must be in GLOBAL_SEQUENCES")
    exempt_paths = ("repro/telemetry/", "repro/checkpoint/",
                    "repro/lint/")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        scope = project.closure(_root_modules(project))
        if not scope:
            return
        registered = _registered_sequences(project)
        for pf in project.files:
            if pf.module not in scope \
                    or project.modules.get(pf.module) is not pf:
                continue
            yield from self._check_module(project, pf, registered)

    def _check_module(self, project: ProjectContext, pf: ProjectFile,
                      registered: Optional[Set[Tuple[str, str]]]
                      ) -> Iterator[Finding]:
        for where, value, stmt in _iter_bindings(pf.ctx.tree):
            kind = _unpicklable_kind(value)
            if kind is not None:
                yield self.file_finding(
                    pf, stmt,
                    f"{kind} bound at {where} is reachable from a "
                    f"checkpoint root and does not pickle; bind a "
                    f"module-level function / path / list instead")
        if registered is None:
            return
        for node in pf.ctx.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and _is_itertools_count(node.value, pf):
                attr = node.targets[0].id
                if (pf.module, attr) not in registered:
                    yield self.file_finding(
                        pf, node,
                        f"module-level itertools.count {attr!r} is not "
                        f"registered in GLOBAL_SEQUENCES; restored "
                        f"runs would re-issue IDs from its initial "
                        f"value")
