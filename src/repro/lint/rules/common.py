"""Shared AST helpers for reprolint rules.

The rules that guard module APIs (``random``, ``time``, ``datetime``,
``numpy.random``) need to see through import aliasing: ``import random
as rnd`` followed by ``rnd.random()`` is the same contract violation as
the unaliased call.  :class:`ImportMap` records, per file, which local
names are bound to which canonical dotted modules (and which names were
``from``-imported from them), so rules resolve every call head back to
its canonical module path before matching.

Project rules (:mod:`repro.lint.project`) construct the map with the
file's own dotted module name, which additionally resolves *relative*
imports (``from ..checkpoint import pack_state`` inside
``repro.shard.region`` binds ``pack_state`` to ``repro.checkpoint``) so
the cross-module import graph sees through package-relative edges.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple


def dotted_parts(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")`` for pure Name/Attribute chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return tuple(reversed(parts))


class ImportMap:
    """Local-name bindings for modules and from-imported symbols.

    Without ``module`` only absolute imports are recorded (the per-file
    rules' historical behavior).  With ``module`` (the file's dotted
    module name) and ``is_package`` (True for ``__init__.py``),
    relative ``from``-imports are resolved to absolute module paths.
    """

    def __init__(self, tree: ast.Module, module: Optional[str] = None,
                 is_package: bool = False) -> None:
        self._module = module
        self._is_package = is_package
        #: local alias -> canonical dotted module ("np" -> "numpy").
        self.modules: Dict[str, str] = {}
        #: local name -> (canonical module, original symbol name).
        self.symbols: Dict[str, Tuple[str, str]] = {}
        #: every module path the file *executes* on import, full dotted
        #: form — `import pkg.sub.deep` binds only "pkg" locally but
        #: runs pkg, pkg.sub, and pkg.sub.deep (the import graph needs
        #: the deep path; the binding maps need the local name).
        self.imported: List[str] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    local = item.asname or item.name.split(".")[0]
                    # `import numpy.random` binds "numpy"; with asname
                    # the alias names the full dotted submodule.
                    self.modules[local] = (item.name if item.asname
                                          else item.name.split(".")[0])
                    self.imported.append(item.name)
            elif isinstance(node, ast.ImportFrom):
                base = self._from_base(node)
                if base is None:
                    continue
                self.imported.append(base)
                for item in node.names:
                    local = item.asname or item.name
                    self.symbols[local] = (base, item.name)

    def _from_base(self, node: ast.ImportFrom) -> Optional[str]:
        """The absolute module a ``from ... import`` pulls names from;
        None when a relative import cannot be resolved (no module name
        given, or the import climbs past the package root)."""
        if node.level == 0:
            return node.module
        if self._module is None:
            return None
        parts = self._module.split(".")
        # Level 1 names the enclosing package: the module's parent, or
        # the package itself when the file is an ``__init__.py``.
        drop = node.level - 1 if self._is_package else node.level
        if drop >= len(parts):
            return None  # climbs past the package root
        base = parts[:len(parts) - drop]
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base) if base else None

    def resolve_call(self, func: ast.AST) -> Optional[Tuple[str, str]]:
        """Canonical ``(module, symbol)`` for a call's func expression.

        ``rnd.Random`` -> ("random", "Random"); with ``from random
        import Random as R``, ``R`` -> ("random", "Random"); for
        ``np.random.rand`` -> ("numpy.random", "rand").  None when the
        head is not an imported module/symbol.
        """
        parts = dotted_parts(func)
        if parts is None:
            return None
        head = parts[0]
        if len(parts) == 1:
            entry = self.symbols.get(head)
            return entry
        module = self.modules.get(head)
        if module is None:
            symbol = self.symbols.get(head)
            if symbol is None:
                return None
            # `from numpy import random as nr; nr.rand()` — the symbol
            # is itself a module; extend the dotted path through it.
            module = f"{symbol[0]}.{symbol[1]}"
        dotted = (module,) + parts[1:]
        return ".".join(dotted[:-1]), dotted[-1]

    def from_imports_of(self, tree: ast.Module,
                        module: str) -> Iterator[ast.ImportFrom]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == module \
                    and node.level == 0:
                yield node


def iter_calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node
