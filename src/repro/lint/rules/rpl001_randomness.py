"""RPL001 — all randomness must flow from a seeded ``random.Random``.

The contract (engine.py, DESIGN.md "Determinism"): every stochastic
decision in the simulator derives from ``Simulator.rng`` or from an
explicitly seed-derived ``random.Random`` stream.  Module-global RNG
calls (``random.random()``), unseeded constructions
(``random.Random()``), ``random.seed`` (mutates shared global state),
``SystemRandom`` (OS entropy), the ``numpy.random`` global API, and
dynamic ``__import__("random")`` (the exact PR 3 topology.py bug) all
break cross-run and cross-worker reproducibility.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import FileContext, Finding, Rule, register
from .common import ImportMap, iter_calls

#: numpy.random symbols that are legitimate when explicitly seeded.
_NUMPY_SEEDED_OK = {"Generator", "SeedSequence", "default_rng",
                    "PCG64", "Philox", "MT19937", "SFC64"}


def _is_string_arg(call: ast.Call, value: str) -> bool:
    return bool(call.args) and isinstance(call.args[0], ast.Constant) \
        and call.args[0].value == value


@register
class UnseededRandomnessRule(Rule):
    code = "RPL001"
    name = "unseeded-randomness"
    description = ("module-global or unseeded RNG use; all randomness "
                   "must flow from a seeded random.Random stream")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for call in iter_calls(ctx.tree):
            resolved = imports.resolve_call(call.func)
            if resolved is not None:
                yield from self._check_resolved(ctx, call, *resolved)
            # __import__("random") / importlib.import_module("random"):
            # dodges import tracking entirely — the PR 3 topology.py bug.
            if isinstance(call.func, ast.Name) \
                    and call.func.id == "__import__" \
                    and _is_string_arg(call, "random"):
                yield self.finding(
                    ctx, call,
                    '__import__("random") smuggles in the module-global '
                    "RNG; import random and construct a seeded "
                    "random.Random instead")
            elif resolved == ("importlib", "import_module") \
                    and _is_string_arg(call, "random"):
                yield self.finding(
                    ctx, call,
                    'import_module("random") smuggles in the module-'
                    "global RNG; import random and construct a seeded "
                    "random.Random instead")

    def _check_resolved(self, ctx: FileContext, call: ast.Call,
                        module: str, symbol: str) -> Iterator[Finding]:
        if module == "random":
            if symbol == "Random":
                if not call.args and not call.keywords:
                    yield self.finding(
                        ctx, call,
                        "random.Random() without a seed argument seeds "
                        "from OS entropy; pass a seed derived from the "
                        "run's seed (e.g. derive_seed or "
                        "f\"stream:{sim.seed}\")")
            elif symbol == "SystemRandom":
                yield self.finding(
                    ctx, call,
                    "random.SystemRandom draws OS entropy and can never "
                    "be reproduced; use a seeded random.Random")
            elif symbol == "seed":
                yield self.finding(
                    ctx, call,
                    "random.seed() mutates the shared module-global RNG; "
                    "construct a private seeded random.Random instead")
            else:
                yield self.finding(
                    ctx, call,
                    f"random.{symbol}() draws from the module-global RNG "
                    f"shared by every caller in the process; draw from a "
                    f"seeded random.Random passed in (rng parameter)")
        elif module == "numpy.random" or module.startswith("numpy.random."):
            if symbol == "default_rng":
                if not call.args and not call.keywords:
                    yield self.finding(
                        ctx, call,
                        "numpy.random.default_rng() without a seed is "
                        "entropy-seeded; pass an explicit seed")
            elif symbol not in _NUMPY_SEEDED_OK:
                yield self.finding(
                    ctx, call,
                    f"numpy.random.{symbol}() uses numpy's process-"
                    f"global RNG; use numpy.random.default_rng(seed) "
                    f"and draw from the returned Generator")
