"""RPL002 — wall-clock reads are telemetry's job, nowhere else's.

The sweep determinism contract (DESIGN.md "Sweep runner") promises that
every aggregate is a pure function of (spec, seeds).  A ``time.time()``
or ``datetime.now()`` anywhere in simulation or experiment logic leaks
the host's clock into results, breaking resume (checkpoints replayed at
a different wall time diverge) and cross-worker byte-identity.  The
telemetry package is the single sanctioned consumer of wall clocks —
its families are declared in ``WALL_CLOCK_METRICS`` and excluded from
determinism comparisons.  Elsewhere, simulation code must use
``sim.now``; genuinely wall-clock instrumentation goes through
``phase_timer`` or carries an inline ``# reprolint: disable=RPL002``
with a justification (see sweep/runner.py's task timing).
"""

from __future__ import annotations

from typing import Dict, Iterator, Set, Tuple

from ..core import FileContext, Finding, Rule, register
from .common import ImportMap, iter_calls

_WALL_CLOCK: Dict[str, Set[str]] = {
    "time": {"time", "time_ns", "perf_counter", "perf_counter_ns",
             "monotonic", "monotonic_ns", "process_time",
             "process_time_ns", "clock_gettime", "clock_gettime_ns"},
    "datetime.datetime": {"now", "utcnow", "today"},
    "datetime.date": {"today"},
}


@register
class WallClockRule(Rule):
    code = "RPL002"
    name = "wall-clock-outside-telemetry"
    description = ("wall-clock reads outside repro/telemetry break sweep "
                   "resume and cross-worker reproducibility")
    exempt_paths: Tuple[str, ...] = ("repro/telemetry/",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for call in iter_calls(ctx.tree):
            resolved = imports.resolve_call(call.func)
            if resolved is None:
                continue
            module, symbol = resolved
            # `from datetime import datetime; datetime.now()` resolves
            # to module="datetime", symbol-chain via the class: the
            # ImportMap returns ("datetime.datetime", "now") because the
            # class is a from-imported symbol extended by the attribute.
            if symbol in _WALL_CLOCK.get(module, ()):
                yield self.finding(
                    ctx, call,
                    f"{module}.{symbol}() reads the wall clock; use the "
                    f"simulation clock (sim.now) or route timing through "
                    f"repro.telemetry (phase_timer); if the wall clock "
                    f"is genuinely required, suppress inline with a "
                    f"justification")
