"""reprolint core: findings, rules, suppressions, and the lint driver.

The repo's determinism, telemetry, and mutation contracts live in prose
(DESIGN.md) and were twice violated silently before PR 3 fixed them
(an inline ``__import__("random")`` in topology.py, cross-run registry
residue).  This package turns each written-down contract into an
AST-level check so CI fails *at the line that breaks the contract*
instead of at the first nondeterministic sweep three PRs later.

Architecture
------------

* :class:`Finding` — one diagnostic: rule code, path, line, column,
  message.  ``baseline_key`` is its stable identity for grandfathering.
* :class:`Rule` — a check over one parsed file.  Rules self-register via
  the :func:`register` decorator; ``exempt_paths`` carves out the
  modules that *implement* a contract (e.g. ``netsim/links.py`` is the
  one place allowed to write ``Link.capacity_bps``).
* :class:`ProjectRule` — a check over the *whole parsed tree* (a
  :class:`~repro.lint.project.ProjectContext`): cross-module contracts
  like duplicated constants or pipe-protocol exhaustiveness that no
  single file can witness.  Project rules run only in project mode
  (``lint_paths(..., project=True)`` / the CLI's ``--project``, which
  defaults on for directory arguments).
* :class:`FileContext` — parsed source plus the suppression table
  extracted from ``# reprolint: disable=RPL0xx`` comments.
* :func:`lint_paths` / :func:`lint_source` — the drivers; both return a
  :class:`LintResult` with findings sorted by (path, line, col, rule).
  Inline suppressions and ``exempt_paths`` apply to project findings
  exactly as to per-file ones (resolved through the finding's file).

Suppression syntax (the sanctioned escape hatch; see DESIGN.md
"Enforced invariants"):

* ``# reprolint: disable=RPL002`` on a line silences exactly that rule
  on exactly that line (several codes may be comma-separated).
* ``# reprolint: disable-file=RPL002`` anywhere in a file silences the
  rule for the whole file.

Everything here is stdlib-only (``ast`` + ``tokenize``) by design: the
linter gates CI on py3.9 and must not drag in dependencies.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
import io
from pathlib import Path
import re
import tokenize
from typing import (TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Set, Tuple, Type)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .project import ProjectContext, ProjectFile

_DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*(disable(?:-file)?)\s*=\s*([A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)")
_CODE_FORMAT = re.compile(r"^RPL\d{3}$")


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic, ordered for stable output."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def baseline_key(self) -> str:
        """Stable identity used by the baseline file (rule:path:line)."""
        return f"{self.rule}:{self.path}:{self.line}"

    def to_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class FileContext:
    """One parsed file plus its suppression table."""

    def __init__(self, display_path: str, source: str, tree: ast.Module,
                 line_suppressions: Dict[int, Set[str]],
                 file_suppressions: Set[str]) -> None:
        self.display_path = display_path
        self.source = source
        self.tree = tree
        self.line_suppressions = line_suppressions
        self.file_suppressions = file_suppressions

    @classmethod
    def from_source(cls, source: str,
                    display_path: str = "<snippet>") -> "FileContext":
        """Parse ``source``; raises SyntaxError on unparsable input."""
        tree = ast.parse(source, filename=display_path)
        line_sup, file_sup = _parse_suppressions(source)
        return cls(display_path, source, tree, line_sup, file_sup)

    def suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_suppressions:
            return True
        return rule in self.line_suppressions.get(line, ())


def _parse_suppressions(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract ``# reprolint: disable[-file]=...`` directives.

    Uses :mod:`tokenize` (not string scanning) so directives inside
    string literals are inert.  Tokenization errors degrade to "no
    suppressions" — the file already parsed as Python, so this only
    happens on exotic encodings.
    """
    line_sup: Dict[int, Set[str]] = {}
    file_sup: Set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(tok.string)
            if match is None:
                continue
            codes = {c.strip() for c in match.group(2).split(",")}
            if match.group(1) == "disable-file":
                file_sup |= codes
            else:
                line_sup.setdefault(tok.start[0], set()).update(codes)
    except tokenize.TokenError:
        pass
    return line_sup, file_sup


class Rule:
    """Base class: one contract check over one file.

    Subclasses set ``code`` / ``name`` / ``description``, optionally
    ``exempt_paths`` (posix path fragments; a file matching any fragment
    is skipped — these are the modules that *implement* the guarded
    contract), and override :meth:`check`.
    """

    code: str = ""
    name: str = ""
    description: str = ""
    #: Posix path fragments exempt from this rule (contract implementers).
    exempt_paths: Tuple[str, ...] = ()

    def applies(self, display_path: str) -> bool:
        posix = Path(display_path).as_posix()
        return not any(fragment in posix for fragment in self.exempt_paths)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST,
                message: str) -> Finding:
        return Finding(path=ctx.display_path,
                       line=getattr(node, "lineno", 0),
                       col=getattr(node, "col_offset", 0),
                       rule=self.code, message=message)


class ProjectRule(Rule):
    """Base class: one cross-module contract check over the whole tree.

    Subclasses override :meth:`check_project` and receive a
    :class:`~repro.lint.project.ProjectContext` (import graph, symbol
    table, every parsed file).  Findings may land in any file; the
    driver applies that file's inline suppressions and this rule's
    ``exempt_paths`` per finding.  Per-file runs skip project rules
    entirely — they need the whole program to say anything sound.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        raise NotImplementedError

    def file_finding(self, pf: "ProjectFile", node: ast.AST,
                     message: str) -> Finding:
        """A finding anchored in one project file (its display path)."""
        return self.finding(pf.ctx, node, message)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry."""
    if not _CODE_FORMAT.match(cls.code or ""):
        raise ValueError(
            f"rule {cls.__name__} has malformed code {cls.code!r}; "
            f"want RPLnnn")
    clash = _REGISTRY.get(cls.code)
    if clash is not None and clash is not cls:
        raise ValueError(
            f"rule code {cls.code} registered twice "
            f"({clash.__name__} and {cls.__name__})")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by code."""
    _load_rules()
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def rule_codes() -> List[str]:
    _load_rules()
    return sorted(_REGISTRY)


def _load_rules() -> None:
    # Import for the side effect of @register; idempotent.
    from . import rules  # noqa: F401


def select_rules(select: Optional[Iterable[str]] = None,
                 ignore: Optional[Iterable[str]] = None) -> List[Rule]:
    """The active rule set after ``--select`` / ``--ignore`` filtering.

    Unknown codes raise ValueError so a typo in CI config fails loudly
    instead of silently checking nothing.
    """
    known = set(rule_codes())
    for label, codes in (("select", select), ("ignore", ignore)):
        unknown = set(codes or ()) - known
        if unknown:
            raise ValueError(
                f"unknown rule code(s) in --{label}: "
                f"{', '.join(sorted(unknown))}; known: "
                f"{', '.join(sorted(known))}")
    active = all_rules()
    if select:
        wanted = set(select)
        active = [r for r in active if r.code in wanted]
    if ignore:
        dropped = set(ignore)
        active = [r for r in active if r.code not in dropped]
    return active


@dataclass
class LintResult:
    """What one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    #: Findings silenced by inline/file suppressions (count only).
    suppressed: int = 0
    #: Files that failed to parse: (path, message).
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Every ``.py`` file under ``paths``, sorted for stable output."""
    out: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(p for p in path.rglob("*.py")
                       if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def lint_file(path: Path, rules: Sequence[Rule],
              result: LintResult) -> None:
    display = path.as_posix()
    try:
        source = path.read_text(encoding="utf-8")
        ctx = FileContext.from_source(source, display)
    except (OSError, SyntaxError, UnicodeDecodeError) as exc:
        result.parse_errors.append((display, str(exc)))
        return
    result.files_checked += 1
    _check_context(ctx, rules, result)


def _check_context(ctx: FileContext, rules: Sequence[Rule],
                   result: LintResult) -> None:
    for rule in rules:
        if isinstance(rule, ProjectRule) or not rule.applies(
                ctx.display_path):
            continue
        for finding in rule.check(ctx):
            if ctx.suppressed(finding.rule, finding.line):
                result.suppressed += 1
            else:
                result.findings.append(finding)


def _check_project(project: "ProjectContext", rules: Sequence[Rule],
                   result: LintResult) -> None:
    for rule in rules:
        if not isinstance(rule, ProjectRule):
            continue
        for finding in rule.check_project(project):
            if not rule.applies(finding.path):
                continue
            pf = project.file_for(finding.path)
            if pf is not None and pf.ctx.suppressed(finding.rule,
                                                    finding.line):
                result.suppressed += 1
            else:
                result.findings.append(finding)


def lint_paths(paths: Sequence[str],
               select: Optional[Iterable[str]] = None,
               ignore: Optional[Iterable[str]] = None,
               project: bool = False) -> LintResult:
    """Lint every Python file under ``paths``; the main entry point.

    With ``project=True`` the tree is parsed once into a
    :class:`~repro.lint.project.ProjectContext`, per-file rules run
    over its cached contexts, and the cross-module
    :class:`ProjectRule` checks run over the whole program.
    """
    rules = select_rules(select, ignore)
    result = LintResult()
    if project:
        from .project import ProjectContext
        tree = ProjectContext.build(paths)
        result.parse_errors.extend(tree.parse_errors)
        for pf in tree.files:
            result.files_checked += 1
            _check_context(pf.ctx, rules, result)
        _check_project(tree, rules, result)
    else:
        for path in iter_python_files(paths):
            lint_file(path, rules, result)
    result.findings.sort()
    return result


def lint_project(paths: Sequence[str],
                 select: Optional[Iterable[str]] = None,
                 ignore: Optional[Iterable[str]] = None) -> LintResult:
    """Whole-program lint of ``paths``: :func:`lint_paths` with
    ``project=True`` (the full-tree / CI entry point)."""
    return lint_paths(paths, select=select, ignore=ignore, project=True)


def lint_source(source: str, display_path: str = "<snippet>",
                select: Optional[Iterable[str]] = None,
                ignore: Optional[Iterable[str]] = None) -> LintResult:
    """Lint one in-memory snippet (the fixture-test entry point)."""
    rules = select_rules(select, ignore)
    result = LintResult()
    try:
        ctx = FileContext.from_source(source, display_path)
    except SyntaxError as exc:
        result.parse_errors.append((display_path, str(exc)))
        return result
    result.files_checked = 1
    _check_context(ctx, rules, result)
    result.findings.sort()
    return result
