"""FastFlex: programmable data plane defenses as a first-class network
service (HotNets '19 reproduction).

Subpackages:

* :mod:`repro.netsim` — the network substrate (discrete-event + fluid).
* :mod:`repro.dataplane` — switch-hardware primitives and resources.
* :mod:`repro.core` — FastFlex itself: analyzer, scheduler, multimode
  data plane, distributed protocols, scaling, federation.
* :mod:`repro.boosters` — the defense-app catalog.
* :mod:`repro.attacks` — Crossfire/rolling/pulsing/volumetric attackers.
* :mod:`repro.baselines` — the centralized SDN-TE defense.
* :mod:`repro.experiments` — drivers regenerating the paper's figures.

Run ``python -m repro`` for a CLI over the experiments.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
