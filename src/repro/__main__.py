"""Command-line entry point: ``python -m repro <experiment>``.

Subcommands regenerate the paper's figures:

* ``figure1`` — the merge/place/scale pipeline report.
* ``figure2`` — the multimode sequence and mixed-vector regions.
* ``figure3`` — the FastFlex vs. SDN baseline throughput series.
* ``all``     — everything, in order.

Telemetry flags (any experiment):

* ``--trace FILE``   — enable structured event tracing and write the
  run's timeline (mode transitions, detections, allocation passes,
  repurposing, state transfers) as JSON Lines.
* ``--metrics FILE`` — write a JSON snapshot of the metrics registry
  (counters, gauges, histograms) after the run.
"""

from __future__ import annotations

import argparse
import sys

from . import telemetry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FastFlex (HotNets '19) reproduction experiments")
    parser.add_argument(
        "experiment", choices=["figure1", "figure2", "figure3", "all"],
        help="which figure to regenerate")
    parser.add_argument(
        "--duration", type=float, default=None,
        help="override the figure3 horizon in seconds (default 120)")
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the figure3 random seed")
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record structured events and write them as JSONL to FILE")
    parser.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="write a JSON metrics-registry snapshot to FILE")
    args = parser.parse_args(argv)

    # One run = one snapshot: zero whatever earlier in-process runs
    # accumulated, then opt into tracing if asked.
    telemetry.reset()
    trace = telemetry.trace()
    was_enabled = trace.enabled
    if args.trace is not None:
        trace.enable()
    try:
        if args.experiment in ("figure1", "all"):
            from .experiments.figure1 import format_report
            print(format_report())
            print()
        if args.experiment in ("figure2", "all"):
            from .experiments import figure2
            figure2.main()
            print()
        if args.experiment in ("figure3", "all"):
            from .experiments.figure3 import (Figure3Config, format_report,
                                              run_both)
            overrides = {}
            if args.duration is not None:
                overrides["duration_s"] = args.duration
            if args.seed is not None:
                overrides["seed"] = args.seed
            config = Figure3Config(**overrides)
            print(format_report(run_both(config), config))
    finally:
        if args.trace is not None:
            written = trace.write_jsonl(args.trace)
            print(f"[telemetry] wrote {written} trace events "
                  f"to {args.trace}", file=sys.stderr)
            trace.enabled = was_enabled
        if args.metrics is not None:
            telemetry.metrics().write_json(args.metrics)
            print(f"[telemetry] wrote metrics snapshot to {args.metrics}",
                  file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
