"""Command-line entry point: ``python -m repro <experiment>``.

Subcommands regenerate the paper's figures:

* ``figure1`` — the merge/place/scale pipeline report.
* ``figure2`` — the multimode sequence and mixed-vector regions.
* ``figure3`` — the FastFlex vs. SDN baseline throughput series.
* ``all``     — everything, in order.
* ``sweep``   — deterministic multi-seed sweeps over any experiment
  driver (``python -m repro sweep figure3 --seeds 0:20 --workers 8
  --out DIR [--resume]``); see :mod:`repro.sweep.cli` for its flags.
* ``serve``   — always-on service mode: run a scenario as a long-lived
  engine accepting live injections (attach/detach attacks, link
  failures) with periodic auto-checkpointing and streamed JSONL
  telemetry; restart after a crash with ``--restore CKPT``.  See
  :mod:`repro.checkpoint.service` for its flags.
* ``shard``   — sharded region simulation: partition a scenario's
  topology into regions advanced in conservative time windows
  (``python -m repro shard --regions N --workers K``); see
  :mod:`repro.shard.cli` for its flags.

Telemetry flags (any experiment):

* ``--trace FILE``   — enable structured event tracing and write the
  run's timeline (mode transitions, detections, allocation passes,
  repurposing, state transfers) as JSON Lines.
* ``--metrics FILE`` — write a JSON snapshot of the metrics registry
  (counters, gauges, histograms) after the run.  For ``figure3`` /
  ``all`` the snapshot additionally carries a ``per_system`` section
  with the baseline's and FastFlex's registries snapshotted separately,
  so per-system numbers stay recoverable from the summed totals.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import telemetry


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "sweep":
        from .sweep.cli import sweep_main
        return sweep_main(argv[1:])
    if argv and argv[0] == "serve":
        from .checkpoint.service import serve_main
        return serve_main(argv[1:])
    if argv and argv[0] == "shard":
        from .shard.cli import shard_main
        return shard_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FastFlex (HotNets '19) reproduction experiments",
        epilog="For multi-seed parameter sweeps use: "
               "python -m repro sweep <driver> [options]")
    parser.add_argument(
        "experiment", choices=["figure1", "figure2", "figure3", "all"],
        help="which figure to regenerate (or 'sweep'/'serve'/'shard', "
             "which take their own options)")
    parser.add_argument(
        "--duration", type=float, default=None,
        help="override the figure3 horizon in seconds (default 120)")
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the figure3 random seed")
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record structured events and write them as JSONL to FILE")
    parser.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="write a JSON metrics-registry snapshot to FILE")
    args = parser.parse_args(argv)

    # --duration/--seed only parameterize figure3; silently accepting
    # them for figure1/figure2 would report results the flags never
    # influenced.
    if args.experiment in ("figure1", "figure2"):
        ignored = [flag for flag, value in
                   (("--duration", args.duration), ("--seed", args.seed))
                   if value is not None]
        if ignored:
            flags = " and ".join(ignored)
            them = "them" if len(ignored) > 1 else "it"
            parser.error(
                f"{flags}: these overrides only apply to figure3 (or "
                f"the figure3 stage of 'all'); {args.experiment} does "
                f"not take {them}")

    # One run = one snapshot: zero whatever earlier in-process runs
    # accumulated, then opt into tracing if asked.
    telemetry.reset()
    trace = telemetry.trace()
    was_enabled = trace.enabled
    if args.trace is not None:
        trace.enable()
    per_system_metrics = None
    try:
        if args.experiment in ("figure1", "all"):
            from .experiments.figure1 import format_report
            print(format_report())
            print()
        if args.experiment in ("figure2", "all"):
            from .experiments import figure2
            figure2.main()
            print()
        if args.experiment in ("figure3", "all"):
            from .experiments.figure3 import (Figure3Config, format_report,
                                              run_both)
            overrides = {}
            if args.duration is not None:
                overrides["duration_s"] = args.duration
            if args.seed is not None:
                overrides["seed"] = args.seed
            config = Figure3Config(**overrides)
            results = run_both(config)
            per_system_metrics = {name: result.metrics
                                  for name, result in results.items()}
            print(format_report(results, config))
    finally:
        if args.trace is not None:
            written = trace.write_jsonl(args.trace)
            print(f"[telemetry] wrote {written} trace events "
                  f"to {args.trace}", file=sys.stderr)
            trace.enabled = was_enabled
        if args.metrics is not None:
            snapshot = telemetry.metrics().snapshot()
            if per_system_metrics is not None:
                snapshot["per_system"] = per_system_metrics
            with open(args.metrics, "w") as fh:
                json.dump(snapshot, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"[telemetry] wrote metrics snapshot to {args.metrics}",
                  file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
