"""Command-line entry point: ``python -m repro <experiment>``.

Subcommands regenerate the paper's figures:

* ``figure1`` — the merge/place/scale pipeline report.
* ``figure2`` — the multimode sequence and mixed-vector regions.
* ``figure3`` — the FastFlex vs. SDN baseline throughput series.
* ``all``     — everything, in order.
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FastFlex (HotNets '19) reproduction experiments")
    parser.add_argument(
        "experiment", choices=["figure1", "figure2", "figure3", "all"],
        help="which figure to regenerate")
    parser.add_argument(
        "--duration", type=float, default=None,
        help="override the figure3 horizon in seconds (default 120)")
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the figure3 random seed")
    args = parser.parse_args(argv)

    if args.experiment in ("figure1", "all"):
        from .experiments.figure1 import format_report
        print(format_report())
        print()
    if args.experiment in ("figure2", "all"):
        from .experiments import figure2
        figure2.main()
        print()
    if args.experiment in ("figure3", "all"):
        from .experiments.figure3 import (Figure3Config, format_report,
                                          run_both)
        overrides = {}
        if args.duration is not None:
            overrides["duration_s"] = args.duration
        if args.seed is not None:
            overrides["seed"] = args.seed
        config = Figure3Config(**overrides)
        print(format_report(run_both(config), config))
    return 0


if __name__ == "__main__":
    sys.exit(main())
