"""Always-on service mode: ``python -m repro serve``.

Runs a scenario world as a long-lived service instead of a batch run:

* the engine advances in bounded event slices inside an asyncio loop,
  so the driver stays responsive between slices;
* live **scenario injections** arrive as JSON commands (one object per
  line, stdin by default or ``--commands FILE``): attach/detach the
  rolling attacker, fail a link, degrade capacity, checkpoint, status,
  stop — all without restarting the process;
* **telemetry streams** as JSONL (``--stream``): every buffered trace
  event (the existing :class:`~repro.telemetry.EventTrace` schema) is
  drained between slices, interleaved with ``service_heartbeat``
  records carrying the simulation clock and event count;
* the engine **auto-checkpoints** every N executed events
  (``--checkpoint-every-events``, written to ``--checkpoint-dir``), so
  a ``kill -9`` loses at most one checkpoint interval — restart with
  ``--restore`` and the run continues deterministically.  Checkpoint
  cadence is event-count based, not wall-clock based, which keeps the
  service free of wall-clock reads (the RPL002 contract) and makes the
  kill-and-resume CI gate (``scripts/check_restore.py``) reproducible.

Command protocol (requests on the command stream, one JSON object per
line; responses and telemetry on the output stream)::

    {"op": "attach-attack", "start_delay": 1.0}
    {"op": "detach-attack"}
    {"op": "fail-link", "src": "s3", "dst": "s4"}
    {"op": "set-link-capacity", "src": "s3", "dst": "s4",
     "capacity_bps": 1e9}
    {"op": "checkpoint", "path": "optional/explicit.ckpt"}
    {"op": "status"}
    {"op": "stop"}

Commands execute at the next slice boundary, at the simulation time the
engine has reached — deterministic with respect to the event sequence,
not with respect to wall-clock arrival.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import queue
import sys
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO

from .. import telemetry
from ..netsim.engine import Simulator
from .format import CheckpointError

_TRACE = telemetry.trace()

#: Scenario registry: name -> (system, description).  Scenarios are
#: figure3 worlds; the world API (build/advance/inject/finish) lives in
#: :mod:`repro.experiments.figure3`.
SCENARIOS = {
    "figure3_fastflex": ("fastflex",
                         "FastFlex defense on the Figure 2 network"),
    "figure3_baseline": ("baseline_sdn",
                         "centralized SDN-TE baseline"),
}


class EngineService:
    """The long-lived driver around one scenario world."""

    def __init__(self, scenario: str, seed: int, duration_s: float,
                 step_events: int = 500,
                 checkpoint_every_events: int = 0,
                 checkpoint_dir: Optional[Path] = None,
                 stream: Optional[TextIO] = None,
                 launch_attacker: bool = False) -> None:
        from ..experiments.figure3 import Figure3Config, build_world
        if scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {scenario!r}; have {sorted(SCENARIOS)}")
        if step_events < 1:
            raise ValueError("step_events must be >= 1")
        self.scenario = scenario
        self.step_events = step_events
        self.checkpoint_every_events = checkpoint_every_events
        self.checkpoint_dir = checkpoint_dir
        self.stream = stream
        self.stopped = False
        self.commands: "queue.Queue[Dict[str, Any]]" = queue.Queue()
        system, _ = SCENARIOS[scenario]
        config = Figure3Config(seed=seed, duration_s=duration_s)
        if stream is not None:
            _TRACE.enable()
        self.world = build_world(system, config,
                                 launch_attacker=launch_attacker)
        self._next_checkpoint = checkpoint_every_events

    @classmethod
    def from_checkpoint(cls, path: Path, step_events: int = 500,
                        checkpoint_every_events: int = 0,
                        checkpoint_dir: Optional[Path] = None,
                        stream: Optional[TextIO] = None
                        ) -> "EngineService":
        """Resume a service from an engine checkpoint written by
        :meth:`checkpoint` (or any ``world.sim.snapshot``)."""
        sim, world, meta = Simulator.restore(path)
        if world is None or not hasattr(world, "config"):
            raise CheckpointError(
                f"{path}: checkpoint has no scenario world attached")
        service = cls.__new__(cls)
        service.scenario = str(meta.get("scenario",
                                        f"figure3_{world.system}"))
        service.step_events = step_events
        service.checkpoint_every_events = checkpoint_every_events
        service.checkpoint_dir = checkpoint_dir
        service.stream = stream
        service.stopped = False
        service.commands = queue.Queue()
        service.world = world
        if stream is not None:
            _TRACE.enable()
        executed = sim.events_executed
        if checkpoint_every_events:
            # Next multiple strictly after the restored position.
            service._next_checkpoint = (
                (executed // checkpoint_every_events) + 1
            ) * checkpoint_every_events
        else:
            service._next_checkpoint = 0
        return service

    # ------------------------------------------------------------------
    # Output stream
    # ------------------------------------------------------------------
    def _emit(self, record: Dict[str, Any]) -> None:
        if self.stream is None:
            return
        json.dump(record, self.stream, sort_keys=True, default=str)
        self.stream.write("\n")
        self.stream.flush()

    def _drain_trace(self) -> None:
        if self.stream is None:
            return
        for event in _TRACE.drain():
            self._emit(event.to_dict())

    def _heartbeat(self) -> None:
        sim = self.world.sim
        self._emit({"kind": "service_heartbeat", "sim_time": sim.now,
                    "events_executed": sim.events_executed,
                    "pending_events": sim.pending(),
                    "scenario": self.scenario})

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, path: Optional[Path] = None) -> Path:
        sim = self.world.sim
        if path is None:
            if self.checkpoint_dir is None:
                raise CheckpointError(
                    "no checkpoint path: pass one or set --checkpoint-dir")
            path = (Path(self.checkpoint_dir)
                    / f"ckpt_{sim.events_executed:012d}.ckpt")
        fingerprint = sim.snapshot(path, state=self.world,
                                   meta={"scenario": self.scenario})
        self._emit({"kind": "service_checkpoint", "sim_time": sim.now,
                    "events_executed": sim.events_executed,
                    "path": str(path), "fingerprint": fingerprint})
        return Path(path)

    def _maybe_auto_checkpoint(self) -> None:
        if not self.checkpoint_every_events:
            return
        executed = self.world.sim.events_executed
        if executed >= self._next_checkpoint:
            self.checkpoint()
            interval = self.checkpoint_every_events
            self._next_checkpoint = ((executed // interval) + 1) * interval

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def submit(self, command: Dict[str, Any]) -> None:
        """Enqueue one command; executed at the next slice boundary."""
        self.commands.put(command)

    def _handle(self, command: Dict[str, Any]) -> Dict[str, Any]:
        from ..experiments import figure3
        op = command.get("op")
        sim = self.world.sim
        if op == "attach-attack":
            params = {key: value for key, value in command.items()
                      if key != "op"}
            figure3.attach_attack(self.world, **params)
            return {"op": op, "ok": True}
        if op == "detach-attack":
            figure3.detach_attack(self.world)
            return {"op": op, "ok": True}
        if op == "fail-link":
            figure3.fail_link(self.world, command["src"], command["dst"])
            return {"op": op, "ok": True}
        if op == "set-link-capacity":
            figure3.set_link_capacity(
                self.world, command["src"], command["dst"],
                float(command["capacity_bps"]))
            return {"op": op, "ok": True}
        if op == "checkpoint":
            explicit = command.get("path")
            path = self.checkpoint(None if explicit is None
                                   else Path(explicit))
            return {"op": op, "ok": True, "path": str(path)}
        if op == "status":
            return {"op": op, "ok": True, "sim_time": sim.now,
                    "events_executed": sim.events_executed,
                    "pending_events": sim.pending(),
                    "scenario": self.scenario,
                    "attack_attached": self.world.attacker is not None}
        if op == "stop":
            self.stopped = True
            return {"op": op, "ok": True}
        return {"op": op, "ok": False,
                "error": f"unknown op {op!r}"}

    def _process_commands(self) -> None:
        while True:
            try:
                command = self.commands.get_nowait()
            except queue.Empty:
                return
            try:
                response = self._handle(command)
            except (ValueError, KeyError, CheckpointError) as exc:
                response = {"op": command.get("op"), "ok": False,
                            "error": f"{type(exc).__name__}: {exc}"}
            response["kind"] = "service_ack"
            response["sim_time"] = self.world.sim.now
            self._emit(response)

    # ------------------------------------------------------------------
    # The driver loop
    # ------------------------------------------------------------------
    async def run(self) -> Optional[Any]:
        """Advance to the scenario horizon (or a stop command); returns
        the finished :class:`Figure3Result`, or None when stopped."""
        from ..experiments.figure3 import advance_world, finish_world
        world = self.world
        self._heartbeat()
        while not self.stopped and not world.done:
            self._process_commands()
            if self.stopped:
                break
            advance_world(world, max_events=self.step_events)
            self._maybe_auto_checkpoint()
            self._drain_trace()
            self._heartbeat()
            # Yield so the loop stays cooperative (signal handlers, other
            # tasks); the engine slice above is the only blocking work.
            await asyncio.sleep(0)
        self._process_commands()
        if self.stopped:
            if self.checkpoint_dir is not None:
                self.checkpoint()
            self._drain_trace()
            self._emit({"kind": "service_stopped",
                        "sim_time": world.sim.now,
                        "events_executed": world.sim.events_executed})
            return None
        result = finish_world(world)
        self._drain_trace()
        self._emit({"kind": "service_end", "sim_time": world.sim.now,
                    "events_executed": world.sim.events_executed,
                    "rolls": result.rolls})
        return result


def _command_reader(fh: TextIO, service: EngineService) -> None:
    """Blocking reader thread: JSON lines -> service command queue."""
    for line in fh:
        line = line.strip()
        if not line:
            continue
        try:
            command = json.loads(line)
        except ValueError:
            service.submit({"op": "__parse_error__", "line": line[:200]})
            continue
        if isinstance(command, dict):
            service.submit(command)
        else:
            service.submit({"op": "__parse_error__", "line": line[:200]})


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run a scenario as a long-lived service with live "
                    "injections, streaming telemetry, and engine "
                    "checkpoint/restore.")
    parser.add_argument("--scenario", default="figure3_fastflex",
                        choices=sorted(SCENARIOS),
                        help="scenario world to serve")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--duration", type=float, default=120.0,
                        help="simulation horizon in seconds")
    parser.add_argument("--attack", action="store_true",
                        help="launch the scenario's attacker at build "
                             "time (default: start attack-free and wait "
                             "for attach-attack injections)")
    parser.add_argument("--restore", metavar="CKPT", default=None,
                        help="resume from an engine checkpoint instead "
                             "of building a fresh world")
    parser.add_argument("--step-events", type=int, default=500,
                        help="engine events per driver slice")
    parser.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                        help="directory for automatic checkpoints")
    parser.add_argument("--checkpoint-every-events", type=int, default=0,
                        metavar="N",
                        help="auto-checkpoint every N executed events "
                             "(0 = only explicit checkpoint commands)")
    parser.add_argument("--stream", metavar="FILE", default=None,
                        help="write JSONL telemetry (trace events + "
                             "heartbeats + acks) to FILE, or '-' for "
                             "stdout")
    parser.add_argument("--commands", metavar="FILE", default="-",
                        help="command stream (default '-': stdin)")
    parser.add_argument("--no-commands", action="store_true",
                        help="do not read commands at all (batch/CI use)")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write the final metrics-registry snapshot "
                             "as JSON")
    parser.add_argument("--report-out", metavar="FILE", default=None,
                        help="write the finished run's figure3 report "
                             "text")
    return parser


def serve_main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    stream: Optional[TextIO] = None
    stream_needs_close = False
    if args.stream == "-":
        stream = sys.stdout
    elif args.stream is not None:
        stream = open(args.stream, "w")
        stream_needs_close = True

    try:
        if args.restore is not None:
            service = EngineService.from_checkpoint(
                Path(args.restore), step_events=args.step_events,
                checkpoint_every_events=args.checkpoint_every_events,
                checkpoint_dir=(None if args.checkpoint_dir is None
                                else Path(args.checkpoint_dir)),
                stream=stream)
        else:
            telemetry.reset()
            service = EngineService(
                args.scenario, seed=args.seed, duration_s=args.duration,
                step_events=args.step_events,
                checkpoint_every_events=args.checkpoint_every_events,
                checkpoint_dir=(None if args.checkpoint_dir is None
                                else Path(args.checkpoint_dir)),
                stream=stream, launch_attacker=args.attack)
    except (CheckpointError, ValueError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        if stream_needs_close and stream is not None:
            stream.close()
        return 2

    reader: Optional[threading.Thread] = None
    command_fh: Optional[TextIO] = None
    if not args.no_commands:
        command_fh = (sys.stdin if args.commands == "-"
                      else open(args.commands))
        reader = threading.Thread(target=_command_reader,
                                  args=(command_fh, service), daemon=True)
        reader.start()

    try:
        result = asyncio.run(service.run())
    finally:
        if command_fh is not None and command_fh is not sys.stdin:
            command_fh.close()

    if args.metrics_out is not None:
        telemetry.metrics().write_json(args.metrics_out)
    if args.report_out is not None and result is not None:
        from ..experiments.figure3 import format_report
        report = format_report({service.world.system: result},
                               service.world.config)
        with open(args.report_out, "w") as fh:
            fh.write(report + "\n")
    if stream_needs_close and stream is not None:
        stream.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(serve_main())
