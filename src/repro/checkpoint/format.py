"""The on-disk checkpoint container: versioned, fingerprinted, atomic.

A checkpoint file is a one-line ASCII JSON header followed by two raw
binary segments::

    {"magic": "repro-checkpoint", "version": 1,
     "globals_bytes": N, "state_bytes": M,
     "fingerprint": "sha256:...", "meta": {...}}\n
    <N bytes: pickled globals bundle (telemetry + sequence counters)>
    <M bytes: pickled simulation state (telemetry-by-reference)>

The header stays human-readable (``head -1 file.ckpt`` tells you what a
checkpoint contains and when it was taken, in simulation time) while the
payload stays compact.  The fingerprint is the SHA-256 of both payload
segments concatenated, so truncation, bit rot, and partially written
files are all detected before any unpickling happens — a corrupted
checkpoint is rejected with :class:`CheckpointError`, never silently
restored.

Writes are atomic: the container is assembled in a temp file alongside
the target and moved into place with ``os.replace``, the same pattern
the sweep runner uses for task records.  A crash mid-write (the whole
point of checkpoints) therefore leaves either the previous checkpoint or
none, never a torn one.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Tuple, Union

MAGIC = "repro-checkpoint"
FORMAT_VERSION = 1

PathLike = Union[str, "os.PathLike[str]"]


class CheckpointError(RuntimeError):
    """Raised when a checkpoint cannot be written, read, or trusted."""


def fingerprint_payload(globals_blob: bytes, state_blob: bytes) -> str:
    digest = hashlib.sha256()
    digest.update(globals_blob)
    digest.update(state_blob)
    return f"sha256:{digest.hexdigest()}"


def write_container(path: PathLike, globals_blob: bytes, state_blob: bytes,
                    meta: Dict[str, Any]) -> str:
    """Atomically write one checkpoint container; returns the fingerprint."""
    path = Path(path)
    fingerprint = fingerprint_payload(globals_blob, state_blob)
    header = {
        "magic": MAGIC,
        "version": FORMAT_VERSION,
        "globals_bytes": len(globals_blob),
        "state_bytes": len(state_blob),
        "fingerprint": fingerprint,
        "meta": meta,
    }
    header_line = json.dumps(header, sort_keys=True) + "\n"
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            fh.write(header_line.encode("ascii"))
            fh.write(globals_blob)
            fh.write(state_blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint {path}: {exc}") from exc
    finally:
        if tmp.exists():  # only on failure before os.replace
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
    return fingerprint


def read_header(path: PathLike) -> Dict[str, Any]:
    """Parse and validate only the header line (cheap inspection)."""
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            line = fh.readline(1 << 20)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if not line.endswith(b"\n"):
        raise CheckpointError(
            f"{path}: missing or over-long header line - not a checkpoint "
            f"(or truncated inside the header)")
    try:
        header = json.loads(line.decode("ascii"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CheckpointError(f"{path}: header is not JSON: {exc}") from exc
    if not isinstance(header, dict) or header.get("magic") != MAGIC:
        raise CheckpointError(f"{path}: bad magic - not a repro checkpoint")
    version = header.get("version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"{path}: unsupported checkpoint format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})")
    for field in ("globals_bytes", "state_bytes", "fingerprint"):
        if field not in header:
            raise CheckpointError(f"{path}: header missing {field!r}")
    return header


def read_container(path: PathLike
                   ) -> Tuple[Dict[str, Any], bytes, bytes]:
    """Read and verify a container; returns (header, globals, state).

    Both payload segments are length- and fingerprint-checked before
    being returned, so callers may unpickle them without re-validating.
    """
    path = Path(path)
    header = read_header(path)
    try:
        with open(path, "rb") as fh:
            fh.readline(1 << 20)  # header, already validated
            globals_blob = fh.read(int(header["globals_bytes"]))
            state_blob = fh.read(int(header["state_bytes"]))
            trailing = fh.read(1)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if (len(globals_blob) != header["globals_bytes"]
            or len(state_blob) != header["state_bytes"]):
        raise CheckpointError(
            f"{path}: truncated - expected "
            f"{header['globals_bytes'] + header['state_bytes']} payload "
            f"bytes, found {len(globals_blob) + len(state_blob)}")
    if trailing:
        raise CheckpointError(f"{path}: trailing garbage after payload")
    actual = fingerprint_payload(globals_blob, state_blob)
    if actual != header["fingerprint"]:
        raise CheckpointError(
            f"{path}: fingerprint mismatch - file is corrupt "
            f"(header {header['fingerprint']}, payload {actual})")
    return header, globals_blob, state_blob
