"""Checkpoint pickling: simulation state by value, telemetry by reference.

World objects hold references into the process-wide telemetry layer —
``Monitor`` caches labeled gauge children, components keep the default
:class:`~repro.telemetry.MetricsRegistry` or :class:`EventTrace` as an
attribute.  Pickling those by value would be doubly wrong: the registry
owns a ``threading.Lock`` (unpicklable), and a restored *copy* of a
metric would silently diverge from the live registry the rest of the
process keeps incrementing.

Instead the checkpoint pickler serializes every telemetry object that
belongs to the process-wide layer as a symbolic reference (a pickle
"persistent id"), and the unpickler resolves references against the
restoring process's own telemetry layer.  The registry's *values* travel
separately in the checkpoint's globals bundle (see
:mod:`repro.checkpoint.core`), which is restored before the state
segment is unpickled — so by the time a reference resolves, the family
it names exists and carries the checkpointed value.

Metric objects owned by isolated registries (tests) do not match the
process-wide layer and are rejected: an engine checkpoint is defined
over the process-wide telemetry contract only.
"""

from __future__ import annotations

import io
import pickle
import sys
from typing import Any, Dict, Tuple

from .. import telemetry
from ..telemetry.registry import Metric, MetricsRegistry
from ..telemetry.trace import EventTrace
from .format import CheckpointError

#: Persistent-id tags.
_TAG_REGISTRY = "telemetry_registry"
_TAG_TRACE = "telemetry_trace"
_TAG_FAMILY = "metric_family"
_TAG_CHILD = "metric_child"

PICKLE_PROTOCOL = 4  # stable across py3.8+; no benefit from 5 here


def _default_metric_ids() -> Dict[int, Tuple[str, ...]]:
    """Map ``id(metric) -> persistent reference`` for every family and
    labeled child currently registered in the process-wide registry."""
    refs: Dict[int, Tuple[str, ...]] = {}
    registry = telemetry.metrics()
    for name in registry.names():
        family = registry.get(name)
        refs[id(family)] = (_TAG_FAMILY, name)
        for values, child in family._children.items():
            refs[id(child)] = (_TAG_CHILD, name) + tuple(values)
    return refs


class CheckpointPickler(pickle.Pickler):
    """Pickler that swaps process-wide telemetry objects for references."""

    def __init__(self, file: io.BytesIO) -> None:
        super().__init__(file, protocol=PICKLE_PROTOCOL)
        self._metric_refs = _default_metric_ids()
        self._registry = telemetry.metrics()
        self._trace = telemetry.trace()

    def persistent_id(self, obj: Any) -> Any:
        if isinstance(obj, MetricsRegistry):
            if obj is not self._registry:
                raise CheckpointError(
                    "cannot checkpoint state bound to an isolated "
                    "MetricsRegistry; checkpoints cover the process-wide "
                    "telemetry layer only")
            return (_TAG_REGISTRY,)
        if isinstance(obj, EventTrace):
            if obj is not self._trace and obj is not telemetry.NULL_TRACE:
                raise CheckpointError(
                    "cannot checkpoint state bound to a non-default "
                    "EventTrace")
            if obj is telemetry.NULL_TRACE:
                return (_TAG_TRACE, "null")
            return (_TAG_TRACE, "default")
        if isinstance(obj, Metric):
            ref = self._metric_refs.get(id(obj))
            if ref is None:
                raise CheckpointError(
                    f"cannot checkpoint metric {obj.name!r}: not part of "
                    f"the process-wide registry (isolated registries are "
                    f"not checkpointable)")
            return ref
        return None


class CheckpointUnpickler(pickle.Unpickler):
    """Unpickler resolving telemetry references against this process."""

    def persistent_load(self, pid: Any) -> Any:
        tag = pid[0]
        if tag == _TAG_REGISTRY:
            return telemetry.metrics()
        if tag == _TAG_TRACE:
            return telemetry.NULL_TRACE if pid[1] == "null" \
                else telemetry.trace()
        if tag in (_TAG_FAMILY, _TAG_CHILD):
            name = pid[1]
            registry = telemetry.metrics()
            if name not in registry:
                raise CheckpointError(
                    f"checkpoint references metric family {name!r} that "
                    f"the restored registry does not define - was the "
                    f"globals bundle restored first?")
            family = registry.get(name)
            if tag == _TAG_FAMILY:
                return family
            return family.labels(*pid[2:])
        raise CheckpointError(f"unknown persistent id {pid!r}")


#: Recursion headroom while pickling.  A simulation state is a deeply
#: linked object graph — a 1000-switch topology chains nodes -> links ->
#: nodes far past the interpreter's default limit of 1000 frames, and
#: the pickler walks it depth-first.  Scaled worlds (sharded regions,
#: large sweeps) need the larger bound; it is restored on exit so the
#: rest of the process keeps its normal guard.
_PICKLE_RECURSION_LIMIT = 100_000


def dump_state(state: Any) -> bytes:
    """Pickle ``state`` with telemetry-by-reference semantics."""
    buffer = io.BytesIO()
    previous_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(previous_limit, _PICKLE_RECURSION_LIMIT))
    try:
        CheckpointPickler(buffer).dump(state)
    except (pickle.PicklingError, AttributeError, TypeError) as exc:
        raise CheckpointError(
            f"simulation state is not checkpointable: {exc}") from exc
    finally:
        sys.setrecursionlimit(previous_limit)
    return buffer.getvalue()


def load_state(blob: bytes) -> Any:
    """Unpickle a state segment produced by :func:`dump_state`."""
    previous_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(previous_limit, _PICKLE_RECURSION_LIMIT))
    try:
        return CheckpointUnpickler(io.BytesIO(blob)).load()
    except CheckpointError:
        raise
    except Exception as exc:  # pickle raises a zoo of types on bad input
        raise CheckpointError(
            f"cannot unpickle checkpoint state: {exc}") from exc
    finally:
        sys.setrecursionlimit(previous_limit)
