"""Engine checkpoint/restore: capture everything a deterministic run needs.

``save_checkpoint`` serializes three layers into one container (see
:mod:`repro.checkpoint.format`):

* **Simulation state** — an arbitrary picklable object graph rooted at
  whatever the caller passes (typically a
  :class:`~repro.experiments.figure3.Figure3World` or a bare
  :class:`~repro.netsim.engine.Simulator`).  Bound-method callbacks in
  the event queue pull in the entire reachable world: topology, links,
  routing cache, fluid allocator, flow tables, sketches, bloom filters,
  mode-protocol timers, attacker state, and every RNG — pickled with
  exact heap order and tie-break sequence numbers.
* **Telemetry** — the process-wide registry snapshot and full trace
  state, captured by value here and referenced symbolically from inside
  the state segment (see :mod:`repro.checkpoint.pickler`).
* **Global sequences** — the module-level ID generators
  (``flow_id``/``pkt_id``/transfer/advisory/trace ids).  These are
  process-wide ``itertools.count`` objects that the pickled world does
  *not* own; without capturing them a restored process would re-issue
  IDs from 1 and diverge from an uninterrupted run the moment a new
  flow or packet is created (flow IDs are TE tie-breakers, so this is
  behavior, not cosmetics).

Restore inverts the layers in order: globals first (so metric
references resolve against restored families), then the state segment.
The restore contract is documented in DESIGN.md ("Checkpoint format &
restore contract"); the headline property — kill -9 mid-run, restore,
finish, get byte-identical stable metrics and figure outputs — is
enforced by ``scripts/check_restore.py`` in CI.
"""

from __future__ import annotations

import itertools
import pickle
from importlib import import_module
from typing import Any, Dict, Optional, Tuple

from .. import telemetry
from .format import (CheckpointError, PathLike, read_container, read_header,
                     write_container)
from .pickler import dump_state, load_state

#: Module-level ID generators that are part of a run's deterministic
#: state but live outside any picklable object graph.  Every entry is
#: (module, attribute); the attribute must be an ``itertools.count``.
GLOBAL_SEQUENCES: Tuple[Tuple[str, str], ...] = (
    ("repro.core.federation", "_advisory_ids"),
    ("repro.core.state_transfer", "_transfer_ids"),
    ("repro.netsim.flows", "_flow_ids"),
    ("repro.netsim.packet", "_packet_ids"),
    ("repro.netsim.traceroute", "_trace_ids"),
)


def _count_args(counter: Any) -> Tuple[int, ...]:
    """The constructor args that recreate ``counter`` at its current
    position, read without consuming a value."""
    cls, args = counter.__reduce__()[:2]
    if cls is not itertools.count:
        raise CheckpointError(
            f"global sequence is a {type(counter).__name__}, "
            f"expected itertools.count")
    return tuple(args)


def capture_globals() -> Dict[str, Any]:
    """Snapshot process-wide deterministic state: telemetry + sequences."""
    sequences = {}
    for module_name, attr in GLOBAL_SEQUENCES:
        module = import_module(module_name)
        sequences[f"{module_name}:{attr}"] = _count_args(
            getattr(module, attr))
    return {
        "metrics": telemetry.metrics().snapshot(),
        "trace": telemetry.trace().state_dict(),
        "sequences": sequences,
    }


def restore_globals(bundle: Dict[str, Any]) -> None:
    """Restore a :func:`capture_globals` bundle into this process."""
    telemetry.metrics().restore_snapshot(bundle["metrics"])
    telemetry.trace().restore_state(bundle["trace"])
    sequences = bundle["sequences"]
    for module_name, attr in GLOBAL_SEQUENCES:
        key = f"{module_name}:{attr}"
        if key not in sequences:
            raise CheckpointError(
                f"checkpoint globals bundle missing sequence {key!r} - "
                f"written by an incompatible build?")
        module = import_module(module_name)
        setattr(module, attr, itertools.count(*sequences[key]))


def save_checkpoint(path: PathLike, state: Any,
                    meta: Optional[Dict[str, Any]] = None) -> str:
    """Write one checkpoint atomically; returns its fingerprint.

    ``state`` is any picklable object graph (checkpoint-pickling rules
    apply: telemetry by reference, no closures).  ``meta`` is embedded
    verbatim in the human-readable header — callers put the simulation
    clock, event count, seed, and scenario identity there.  Saving
    never mutates simulation or telemetry state, so checkpointing is
    observationally free: a run that checkpoints N times is
    byte-identical to one that never does.
    """
    globals_blob = dump_state(capture_globals())
    state_blob = dump_state(state)
    return write_container(path, globals_blob, state_blob, dict(meta or {}))


def pack_state(state: Any,
               globals_bundle: Optional[Dict[str, Any]] = None) -> bytes:
    """Serialize ``state`` plus the process-global bundle into one
    in-memory blob — the wire format the sharded coordinator uses for
    region checkpoints and final state collection (``save_checkpoint``
    minus the file container).  Packing mutates nothing.

    ``globals_bundle`` lets a caller that already holds a
    :func:`capture_globals` snapshot (e.g. a resident region worker
    swapping per-region bundles) embed it without re-capturing —
    required when the live process globals are *not* the ones that
    belong with ``state``.
    """
    if globals_bundle is None:
        globals_bundle = capture_globals()
    return pickle.dumps((dump_state(globals_bundle), dump_state(state)),
                        protocol=pickle.HIGHEST_PROTOCOL)


def unpack_state(blob: bytes,
                 globals_out: Optional[Dict[str, Any]] = None) -> Any:
    """Invert :func:`pack_state`: restore the globals bundle into this
    process (telemetry registry, trace, ID sequences), then unpickle and
    return the state graph.  (Restoring first is load-bearing: the state
    segment references metric families symbolically, and resolution
    requires them to exist — see :mod:`repro.checkpoint.pickler`.)

    When ``globals_out`` is given, the embedded bundle is also copied
    into it — so a caller that swaps per-region globals bundles (the
    resident shard workers) can hold the blob's bundle without paying a
    second :func:`capture_globals`.
    """
    globals_blob, state_blob = pickle.loads(blob)
    bundle = load_state(globals_blob)
    restore_globals(bundle)
    if globals_out is not None:
        globals_out.update(bundle)
    return load_state(state_blob)


def peek_checkpoint(path: PathLike) -> Dict[str, Any]:
    """The header of a checkpoint (cheap: no payload read, no unpickle)."""
    return read_header(path)


def load_checkpoint(path: PathLike) -> Tuple[Any, Dict[str, Any]]:
    """Verify, restore globals, and unpickle a checkpoint.

    Returns ``(state, meta)``.  The process-wide telemetry registry,
    trace, and global ID sequences are restored as a side effect —
    after this call the process is, for every deterministic observable,
    the process that wrote the checkpoint.
    """
    header, globals_blob, state_blob = read_container(path)
    restore_globals(load_state(globals_blob))
    state = load_state(state_blob)
    return state, dict(header.get("meta", {}))
