"""Engine checkpoint/restore and the always-on service mode.

Public surface:

* :func:`save_checkpoint` / :func:`load_checkpoint` /
  :func:`peek_checkpoint` — the file-level API (versioned, fingerprinted,
  atomically written containers; see :mod:`repro.checkpoint.format`).
* :class:`CheckpointError` — every failure mode (unwritable, corrupt,
  truncated, version-mismatched, unpicklable state) raises this.
* ``Simulator.snapshot()`` / ``Simulator.restore()`` — the engine-level
  wrappers (defined on :class:`repro.netsim.engine.Simulator`).
* ``python -m repro serve`` — the long-lived service driver
  (:mod:`repro.checkpoint.service`): live scenario injections, periodic
  auto-checkpointing, streaming JSONL telemetry.

See DESIGN.md "Checkpoint format & restore contract" for what a
checkpoint captures, the fingerprint scheme, and what invalidates one.
"""

from .core import (GLOBAL_SEQUENCES, capture_globals, load_checkpoint,
                   pack_state, peek_checkpoint, restore_globals,
                   save_checkpoint, unpack_state)
from .format import FORMAT_VERSION, CheckpointError
from .pickler import CheckpointPickler, CheckpointUnpickler

__all__ = [
    "CheckpointError", "CheckpointPickler", "CheckpointUnpickler",
    "FORMAT_VERSION", "GLOBAL_SEQUENCES", "capture_globals",
    "load_checkpoint", "pack_state", "peek_checkpoint", "restore_globals",
    "save_checkpoint", "unpack_state",
]
