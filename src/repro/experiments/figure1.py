"""The Figure 1 pipeline, operationally: merge, place, scale.

Figure 1 is the paper's architecture figure; this driver exercises each
of its stages on the real booster suite and reports the numbers the
figure depicts symbolically: the per-module resource table (stages /
SRAM / TCAM), the sharing savings from the joint analysis (a->b), the
placement quality on a network (c), and a dynamic scale-out of a booster
instance at runtime (d).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..boosters.heavy_hitter import HeavyHitterBooster
from ..boosters.hop_count import HopCountFilterBooster
from ..boosters.lfa_detector import LfaDetectorBooster
from ..boosters.netwarden import NetWardenBooster
from ..boosters.obfuscation import TopologyObfuscationBooster
from ..boosters.packet_dropper import PacketDropperBooster
from ..boosters.poise import AccessPolicy, PoiseBooster
from ..boosters.rate_limiter import GlobalRateLimiterBooster
from ..boosters.reroute import CongestionRerouteBooster
from ..core.analyzer import MergedGraph, ProgramAnalyzer
from ..core.booster import Booster
from ..core.scheduler import Placement, Scheduler
from ..core.te import greedy_min_max_te
from ..dataplane.resources import ResourceVector
from ..netsim.engine import Simulator
from ..netsim.flows import FlowSet, make_flow
from ..netsim.topology import GBPS, abilene_like, figure2_topology


def booster_suite() -> List[Booster]:
    """The full booster catalog used by the Figure 1 benchmarks."""
    return [
        LfaDetectorBooster(),
        CongestionRerouteBooster(),
        PacketDropperBooster(),
        TopologyObfuscationBooster(),
        HeavyHitterBooster(),
        HopCountFilterBooster(),
        GlobalRateLimiterBooster(limits={"tenant0": 1e9}),
        NetWardenBooster(),
        PoiseBooster(policies=[
            AccessPolicy.require("managed_only", ["victim"],
                                 device="managed"),
            AccessPolicy.deny_all("default_deny", ["victim"]),
        ]),
    ]


@dataclass
class MergeSummary:
    """Figure 1a-b numbers."""

    ppms_before: int
    ppms_after: int
    shared_groups: int
    requirement_before: ResourceVector
    requirement_after: ResourceVector
    module_table: List[Tuple[str, float, float, float]]

    @property
    def stage_savings_fraction(self) -> float:
        before = self.requirement_before.stages
        if before <= 0:
            return 0.0
        return 1.0 - self.requirement_after.stages / before

    @property
    def sram_savings_fraction(self) -> float:
        before = self.requirement_before.sram_mb
        if before <= 0:
            return 0.0
        return 1.0 - self.requirement_after.sram_mb / before


def run_merge(boosters: Optional[List[Booster]] = None,
              merge_all_parsers: bool = True) -> Tuple[MergedGraph,
                                                       MergeSummary]:
    """Figure 1a-b: booster dataflow graphs -> merged graph."""
    boosters = boosters if boosters is not None else booster_suite()
    analyzer = ProgramAnalyzer(merge_all_parsers=merge_all_parsers)
    merged = analyzer.merge([b.dataflow() for b in boosters])
    report = merged.report
    summary = MergeSummary(
        ppms_before=report.total_ppms_before,
        ppms_after=report.total_ppms_after,
        shared_groups=report.shared_groups,
        requirement_before=report.requirement_before,
        requirement_after=report.requirement_after,
        module_table=report.module_table(merged))
    return merged, summary


@dataclass
class PlacementSummary:
    """Figure 1c numbers."""

    placement: Placement
    te_max_utilization: float
    detector_switches: int
    path_coverage: float
    feasible: bool


def run_placement(topology: str = "figure2",
                  pervasive: bool = True,
                  boosters: Optional[List[Booster]] = None
                  ) -> PlacementSummary:
    """Figure 1c: map the merged graph onto a network under a TM."""
    sim = Simulator(seed=11)
    if topology == "figure2":
        net = figure2_topology(sim)
        topo = net.topo
        flows = FlowSet()
        for index, client in enumerate(net.client_hosts):
            flows.add(make_flow(client, net.victim, 1.5 * GBPS,
                                sport=20000 + index))
    elif topology == "abilene":
        topo = abilene_like(sim)
        hosts = topo.host_names
        flows = FlowSet()
        for index, src in enumerate(hosts):
            dst = hosts[(index + 3) % len(hosts)]
            if src != dst:
                flows.add(make_flow(src, dst, 0.5 * GBPS,
                                    sport=21000 + index))
    else:
        raise ValueError(f"unknown topology {topology!r}")

    te = greedy_min_max_te(topo, list(flows))
    merged, _ = run_merge(boosters)
    scheduler = Scheduler(pervasive_detection=pervasive)
    paths = [te.paths[fid] for fid in sorted(te.paths)]
    placement = scheduler.place(merged, topo, paths)
    return PlacementSummary(
        placement=placement,
        te_max_utilization=te.max_utilization,
        detector_switches=placement.metrics.detector_switch_count,
        path_coverage=placement.metrics.path_coverage,
        feasible=placement.feasible)


@dataclass
class ScalingSummary:
    """Figure 1d numbers."""

    instances_before: int
    instances_after: int
    state_seeded: bool
    seed_latency_s: float


def run_scaling_demo(hitless: bool = False) -> ScalingSummary:
    """Figure 1d: replicate a loaded booster instance at runtime."""
    from ..core.scaling import ScalingManager
    from ..core.state_transfer import StateTransferService
    from ..netsim.routing import (install_host_routes,
                                  install_switch_routes)

    sim = Simulator(seed=13)
    net = figure2_topology(sim)
    topo = net.topo
    install_host_routes(topo)
    install_switch_routes(topo)

    booster = HeavyHitterBooster()
    source = topo.switch("s1")
    program = booster._make_detector(source)
    source.install_program(program)
    # Load it with traffic so there is state worth moving.
    for index in range(500):
        program.pipe.update(f"host{index % 20}", 1000 + index)

    service = StateTransferService(topo)
    service.install_agents()
    manager = ScalingManager(topo, service)

    outcome = {"ok": None, "at": None}

    def on_ready(ok: bool) -> None:
        outcome["ok"] = ok
        outcome["at"] = sim.now

    before = len(manager.instances_of(program.name))
    started = sim.now
    manager.scale_out(program.name, "s1", "s2",
                      factory=lambda: booster._make_detector(
                          topo.switch("s2")),
                      on_ready=on_ready)
    sim.run(until=started + 2.0)
    after = len(manager.instances_of(program.name))
    return ScalingSummary(
        instances_before=before, instances_after=after,
        state_seeded=bool(outcome["ok"]),
        seed_latency_s=(outcome["at"] - started
                        if outcome["at"] is not None else float("inf")))


def format_report() -> str:  # pragma: no cover - CLI helper
    merged, summary = run_merge()
    lines = ["Figure 1a-b — joint analysis and module sharing", ""]
    lines.append(f"{'module':<34}{'stages':>7}{'SRAM MB':>9}{'TCAM KB':>9}")
    for name, stages, sram, tcam in summary.module_table:
        lines.append(f"{name:<34}{stages:>7.0f}{sram:>9.2f}{tcam:>9.0f}")
    lines.append("")
    lines.append(f"PPMs: {summary.ppms_before} -> {summary.ppms_after} "
                 f"({summary.shared_groups} shared groups)")
    lines.append(f"stage savings: {summary.stage_savings_fraction:.1%}; "
                 f"SRAM savings: {summary.sram_savings_fraction:.1%}")
    place = run_placement()
    lines.append("")
    lines.append("Figure 1c — placement on the Figure 2 network")
    lines.append(f"detectors on {place.detector_switches} switches, "
                 f"path coverage {place.path_coverage:.0%}, "
                 f"TE max link utilization {place.te_max_utilization:.2f}, "
                 f"feasible={place.feasible}")
    scale = run_scaling_demo()
    lines.append("")
    lines.append("Figure 1d — dynamic scale-out of a booster")
    lines.append(f"instances {scale.instances_before} -> "
                 f"{scale.instances_after}, state seeded: "
                 f"{scale.state_seeded} in {scale.seed_latency_s * 1e3:.1f} ms")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_report())
