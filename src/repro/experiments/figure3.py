"""The Figure 3 experiment: FastFlex vs. the SDN baseline under rolling LFA.

Reproduces the paper's only quantitative result: normalized throughput of
normal user flows over a two-minute run while a rolling Crossfire
attacker floods the Figure 2 network's critical links.

* **Baseline** — centralized SDN TE reconfigures every 30 s; the attacker
  detects each reconfiguration via traceroute and rolls to the new
  victim-ward path, so normal traffic keeps collapsing.
* **FastFlex** — detection, mode change, selective rerouting, policing,
  and obfuscation all happen in the data plane at sub-second timescales;
  the attacker never sees a route change to react to.

Run ``python -m repro.experiments.figure3`` to print both time series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..attacks.rolling import RollingAttacker
from ..baselines.sdn_te import SdnTeDefense
from ..boosters.lfa_defense import LfaDefense, build_figure2_defense
from ..core.te import greedy_min_max_te
from ..netsim.flows import FlowSet, make_flow
from ..netsim.fluid import FluidNetwork
from ..netsim.monitor import Monitor, TimeSeries
from ..netsim.routing import (install_fast_reroute_alternates,
                              install_flow_route, install_host_routes,
                              install_switch_routes)
from ..netsim.topology import GBPS, FigureTwoNetwork, figure2_topology
from ..netsim.engine import Simulator
from ..telemetry import metrics, phase_timer, trace

_TRACE = trace()


@dataclass
class Figure3Config:
    """Knobs of the Figure 3 scenario (defaults follow §4.3)."""

    duration_s: float = 120.0
    seed: int = 7
    # Legitimate workload: each client pulls steadily from the victim.
    n_clients: int = 4
    client_demand_bps: float = 1.5 * GBPS
    # Attack: bots x many low-rate connections (Crossfire).
    n_bots: int = 6
    connections_per_bot: int = 200
    per_connection_bps: float = 10e6
    attack_start_s: float = 5.0
    # Topology: critical links at 10 Gbps, detours deliberately smaller
    # so default TE concentrates normal traffic on the short paths.
    critical_capacity: float = 10 * GBPS
    detour_capacity: float = 2 * GBPS
    # Baseline controller.
    te_period_s: float = 30.0
    # Attacker feedback loop.
    attacker_check_period_s: float = 1.0
    attacker_reaction_delay_s: float = 1.0
    # Measurement.
    sample_period_s: float = 0.5
    fluid_interval_s: float = 0.01

    @property
    def normal_demand_total(self) -> float:
        return self.n_clients * self.client_demand_bps


@dataclass
class Figure3Result:
    """One system's run: the throughput series plus event annotations."""

    system: str
    throughput: TimeSeries
    attack_events: List = field(default_factory=list)
    detections: List = field(default_factory=list)
    mode_events: List = field(default_factory=list)
    te_reconfigs: List = field(default_factory=list)
    rolls: int = 0
    #: Fluid-model work counters: epochs processed vs. actual allocator
    #: runs (the difference is epochs served by the steady-state fast
    #: path — a direct view of how much reallocation the attack forced).
    fluid_updates: int = 0
    fluid_allocation_passes: int = 0
    #: Per-system metrics-registry snapshot.  Populated by
    #: :func:`run_both`, which isolates the process-wide registry around
    #: each system's run so the two systems' counters never conflate;
    #: empty when ``run_baseline`` / ``run_fastflex`` are called directly
    #: (the caller owns registry hygiene then).
    metrics: Dict = field(default_factory=dict)

    def mean_during_attack(self, config: Figure3Config) -> float:
        return self.throughput.mean_over(config.attack_start_s + 2.0,
                                         config.duration_s)

    def min_during_attack(self, config: Figure3Config) -> float:
        return self.throughput.min_over(config.attack_start_s + 2.0,
                                        config.duration_s)


@dataclass
class Figure3World:
    """A live, checkpointable Figure 3 run: every named root in one bag.

    ``build_world`` constructs it, ``advance_world`` moves simulation
    time forward (in one call or many — chunking is observationally
    free), ``finish_world`` turns it into a :class:`Figure3Result`.
    The whole object graph is engine-checkpointable
    (``world.sim.snapshot(path, state=world)``), which is what
    ``python -m repro serve`` and the sweep runner's preemption path
    build on.
    """

    system: str
    config: Figure3Config
    sim: Simulator
    net: FigureTwoNetwork
    fluid: FluidNetwork
    flows: FlowSet
    monitor: Monitor
    series: TimeSeries
    defense: object
    deployment: Optional[object] = None
    attacker: Optional[RollingAttacker] = None
    #: Attackers detached by :func:`detach_attack`; their event logs and
    #: roll counts still belong to the run's result.
    past_attackers: List[RollingAttacker] = field(default_factory=list)

    @property
    def done(self) -> bool:
        return self.sim.now >= self.config.duration_s

    def all_attackers(self) -> List[RollingAttacker]:
        """Every attacker this world ever hosted, in attach order."""
        attackers = list(self.past_attackers)
        if self.attacker is not None:
            attackers.append(self.attacker)
        return attackers


def _build_network(config: Figure3Config) -> Tuple[Simulator,
                                                   FigureTwoNetwork,
                                                   FluidNetwork, FlowSet]:
    sim = Simulator(seed=config.seed)
    net = figure2_topology(
        sim, n_clients=config.n_clients, n_bots=config.n_bots,
        critical_capacity=config.critical_capacity,
        detour_capacity=config.detour_capacity)
    flows = FlowSet()
    for index, client in enumerate(net.client_hosts):
        flows.add(make_flow(client, net.victim,
                            config.client_demand_bps,
                            sport=10000 + index))
    fluid = FluidNetwork(net.topo, flows,
                         update_interval=config.fluid_interval_s)
    return sim, net, fluid, flows


def _launch_attacker(net: FigureTwoNetwork, fluid: FluidNetwork,
                     config: Figure3Config) -> RollingAttacker:
    attacker = RollingAttacker(
        net.topo, fluid, bots=net.bot_hosts, decoys=net.decoy_servers,
        victim=net.victim,
        check_period_s=config.attacker_check_period_s,
        reaction_delay_s=config.attacker_reaction_delay_s,
        connections_per_bot=config.connections_per_bot,
        per_connection_bps=config.per_connection_bps)
    # Mapping (one traceroute) takes well under a second; start it early
    # so the flood lands at ``attack_start_s``.
    attacker.map_then_attack(
        start_delay=max(config.attack_start_s - 1.0, 0.0))
    return attacker


def build_world(system: str, config: Optional[Figure3Config] = None,
                defense_overrides: Optional[dict] = None,
                launch_attacker: bool = True) -> Figure3World:
    """Build one system's live world, ready to ``advance_world``.

    ``system`` is ``"baseline_sdn"`` or ``"fastflex"``.  With
    ``launch_attacker=False`` the scenario starts attack-free (the
    service driver's mode: attacks are attached as live injections via
    :func:`attach_attack`).  Construction order is part of the
    determinism contract — every RNG draw and event sequence number
    below must match what the pre-world-API runners did.
    """
    config = config if config is not None else Figure3Config()
    _TRACE.set_context(system=system)
    _TRACE.emit("experiment_start", sim_time=0.0, experiment="figure3",
                duration_s=config.duration_s, seed=config.seed)
    sim, net, fluid, flows = _build_network(config)

    deployment = None
    if system == "baseline_sdn":
        topo = net.topo
        install_host_routes(topo)
        install_switch_routes(topo)
        install_fast_reroute_alternates(topo)
        # Initial configuration: TE over the stable (pre-attack) matrix.
        greedy_min_max_te(topo, list(flows))
        for flow in flows:
            install_flow_route(topo, flow.path)
        defense: object = SdnTeDefense(topo, fluid,
                                       period_s=config.te_period_s)
        defense.start()
    elif system == "fastflex":
        lfa: LfaDefense = build_figure2_defense(
            net, fluid, **(defense_overrides or {}))
        deployment = lfa.setup(flows)
        for flow in flows:
            install_flow_route(net.topo, flow.path)
        defense = lfa
    else:
        raise ValueError(f"unknown figure3 system {system!r}; expected "
                         f"'baseline_sdn' or 'fastflex'")

    fluid.start()
    monitor = Monitor(fluid, period=config.sample_period_s)
    series = monitor.watch_normal_goodput(config.normal_demand_total)
    monitor.start()

    attacker = (_launch_attacker(net, fluid, config)
                if launch_attacker else None)
    return Figure3World(system=system, config=config, sim=sim, net=net,
                        fluid=fluid, flows=flows, monitor=monitor,
                        series=series, defense=defense,
                        deployment=deployment, attacker=attacker)


def advance_world(world: Figure3World, until: Optional[float] = None,
                  max_events: Optional[int] = None) -> float:
    """Run the world forward; returns the simulation clock.

    Splitting the horizon into many ``advance_world`` calls (the serve
    driver's slices, the sweep runner's preemption budget) executes the
    exact same event sequence as one call — chunking only decides how
    often control returns to the caller.
    """
    horizon = until if until is not None else world.config.duration_s
    return world.sim.run(until=horizon, max_events=max_events)


def attach_attack(world: Figure3World, start_delay: float = 1.0,
                  **overrides) -> RollingAttacker:
    """Live injection: launch the rolling Crossfire attacker mid-run."""
    if world.attacker is not None:
        raise ValueError("an attacker is already attached to this world")
    config = world.config
    attacker = RollingAttacker(
        world.net.topo, world.fluid, bots=world.net.bot_hosts,
        decoys=world.net.decoy_servers, victim=world.net.victim,
        check_period_s=overrides.pop("check_period_s",
                                     config.attacker_check_period_s),
        reaction_delay_s=overrides.pop("reaction_delay_s",
                                       config.attacker_reaction_delay_s),
        connections_per_bot=overrides.pop("connections_per_bot",
                                          config.connections_per_bot),
        per_connection_bps=overrides.pop("per_connection_bps",
                                         config.per_connection_bps),
        **overrides)
    attacker.map_then_attack(start_delay=start_delay)
    world.attacker = attacker
    _TRACE.emit("attack_attached", sim_time=world.sim.now,
                start_delay_s=start_delay)
    return attacker


def detach_attack(world: Figure3World) -> None:
    """Live injection: stop every attack flow and clear the active
    attacker slot (a later :func:`attach_attack` may install a new
    one).  The detached attacker's event log and roll count stay part
    of the run via :attr:`Figure3World.past_attackers`."""
    if world.attacker is None:
        raise ValueError("no attacker attached to this world")
    world.attacker.stop_all_flows()
    _TRACE.emit("attack_detached", sim_time=world.sim.now,
                rolls=world.attacker.roll_count)
    world.past_attackers.append(world.attacker)
    world.attacker = None


def fail_link(world: Figure3World, a: str, b: str) -> None:
    """Live injection: remove a link (flows crossing it zero-route until
    a defense or TE pass moves them)."""
    world.net.topo.remove_link(a, b)
    _TRACE.emit("link_failed", sim_time=world.sim.now, link=(a, b))


def set_link_capacity(world: Figure3World, a: str, b: str,
                      capacity_bps: float) -> None:
    """Live injection: degrade or restore one direction's capacity."""
    world.net.topo.link(a, b).set_capacity(capacity_bps)
    _TRACE.emit("link_capacity_set", sim_time=world.sim.now, link=(a, b),
                capacity_bps=capacity_bps)


def finish_world(world: Figure3World) -> Figure3Result:
    """Close out a finished (or abandoned) run into a result object."""
    attackers = world.all_attackers()
    rolls = sum(attacker.roll_count for attacker in attackers)
    attack_events: List = []
    for attacker in attackers:
        attack_events.extend(attacker.events)
    _TRACE.emit("experiment_end", sim_time=world.sim.now,
                experiment="figure3", rolls=rolls)
    _TRACE.clear_context("system")
    result = Figure3Result(
        system=world.system, throughput=world.series,
        attack_events=attack_events,
        rolls=rolls,
        fluid_updates=world.fluid.updates,
        fluid_allocation_passes=world.fluid.allocation_passes)
    if world.system == "baseline_sdn":
        result.te_reconfigs = list(world.defense.records)
    else:
        result.detections = list(world.defense.detector.detections)
        result.mode_events = list(world.deployment.bus.events)
    return result


def run_baseline(config: Optional[Figure3Config] = None) -> Figure3Result:
    """The SDN-TE baseline run."""
    config = config if config is not None else Figure3Config()
    world = build_world("baseline_sdn", config)
    with phase_timer("figure3_baseline_run", trace=_TRACE,
                     sim_time=config.duration_s):
        advance_world(world, config.duration_s)
    return finish_world(world)


def run_fastflex(config: Optional[Figure3Config] = None,
                 defense_overrides: Optional[dict] = None
                 ) -> Figure3Result:
    """The FastFlex run (multimode data plane, no runtime controller)."""
    config = config if config is not None else Figure3Config()
    world = build_world("fastflex", config,
                        defense_overrides=defense_overrides)
    with phase_timer("figure3_fastflex_run", trace=_TRACE,
                     sim_time=config.duration_s):
        advance_world(world, config.duration_s)
    return finish_world(world)


def run_both(config: Optional[Figure3Config] = None
             ) -> Dict[str, Figure3Result]:
    """Run both systems with per-system metrics isolation.

    Both runs share one process-wide registry, so without isolation a
    ``--metrics`` snapshot after ``run_both`` would silently sum the
    baseline's and FastFlex's counters into one number per series.
    Instead the registry is snapshotted and reset around each run: each
    :class:`Figure3Result` carries its own clean snapshot in
    ``result.metrics``, and at the end the registry is rebuilt as
    pre-existing state + baseline + fastflex via
    :meth:`~repro.telemetry.MetricsRegistry.merge`, so callers that
    accumulated metrics before ``run_both`` (e.g. ``python -m repro
    all``) lose nothing and a whole-process snapshot still totals up.
    """
    config = config if config is not None else Figure3Config()
    registry = metrics()
    pre_existing = registry.snapshot()
    registry.reset()
    snapshots = []
    try:
        baseline = run_baseline(config)
        baseline.metrics = registry.snapshot()
        snapshots.append(baseline.metrics)
        registry.reset()
        fastflex = run_fastflex(config)
        fastflex.metrics = registry.snapshot()
        snapshots.append(fastflex.metrics)
        registry.reset()
    finally:
        # Restore the registry even if a run raised: pre-existing state
        # + every completed run's snapshot + whatever partial state the
        # failed run left live (all-zero on success, so merge skips it).
        partial = registry.snapshot()
        registry.reset()
        registry.merge(pre_existing, *snapshots, partial)
    return {"baseline_sdn": baseline, "fastflex": fastflex}


def format_report(results: Dict[str, Figure3Result],
                  config: Figure3Config) -> str:
    """The Figure 3 series and summary, as printable text."""
    lines = ["Figure 3 — normalized throughput of normal flows",
             f"(attack starts at t={config.attack_start_s:.0f}s; "
             f"baseline TE period {config.te_period_s:.0f}s)", ""]
    lines.append(f"{'t (s)':>7}  " + "  ".join(
        f"{name:>14}" for name in sorted(results)))
    samples = {name: dict(r.throughput.samples)
               for name, r in results.items()}
    times = sorted({t for s in samples.values() for t in s})
    for t in times:
        row = [f"{t:7.1f}"]
        for name in sorted(results):
            value = samples[name].get(t)
            row.append(f"{value:14.3f}" if value is not None else " " * 14)
        lines.append("  ".join(row))
    lines.append("")
    for name in sorted(results):
        result = results[name]
        mean = result.mean_during_attack(config)
        low = result.min_during_attack(config)
        lines.append(f"{name:>14}: mean under attack {mean:6.1%}, "
                     f"worst sample {low:6.1%}, attacker rolls "
                     f"{result.rolls}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    config = Figure3Config()
    results = run_both(config)
    print(format_report(results, config))


if __name__ == "__main__":  # pragma: no cover
    main()
