"""Experiment drivers reproducing the paper's figures."""

from .figure3 import (Figure3Config, Figure3Result, format_report,
                      run_baseline, run_both, run_fastflex)

__all__ = ["Figure3Config", "Figure3Result", "format_report",
           "run_baseline", "run_both", "run_fastflex"]
