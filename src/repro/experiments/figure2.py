"""The Figure 2 abstraction, operationally: the multimode data plane.

Figure 2's four panels are a *sequence of mode states*; this driver runs
the scripted scenario and records each transition so benchmarks and
tests can assert on it:

  (a) default mode — every defense booster off, detectors on;
  (b) detection — mode-change probes propagate switch to switch;
  (c) mitigation — suspicious flows rerouted and policed, normal flows
      pinned, traceroutes obfuscated;
  (d) robustness — the rolling attacker never observes a route change.

A second driver exercises the caption's mixed-vector claim: co-existing
modes for different attack types, confined to different regions via the
probes' hop-scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ..attacks.rolling import RollingAttacker
from ..boosters.lfa_defense import build_figure2_defense
from ..boosters.lfa_detector import ATTACK_TYPE, MITIGATION_MODE
from ..core.modes import ModeEventBus, ModeRegistry, ModeSpec
from ..core.mode_protocol import install_mode_agents
from ..netsim.engine import Simulator
from ..netsim.flows import FlowSet, make_flow
from ..netsim.routing import (install_flow_route, install_host_routes,
                              install_switch_routes)
from ..netsim.fluid import FluidNetwork
from ..netsim.topology import GBPS, abilene_like, figure2_topology


@dataclass
class ModeSequenceResult:
    """Everything the Figure 2 sequence produced."""

    #: (a) booster gating observed in the default mode, per switch.
    default_mode_boosters: Dict[str, Dict[str, bool]] = field(
        default_factory=dict)
    #: (b) time each switch entered the mitigation mode.
    activation_times: Dict[str, float] = field(default_factory=dict)
    detection_time: Optional[float] = None
    propagation_delay_s: Optional[float] = None
    #: (c) per-flow path behaviour during mitigation.
    suspicious_rerouted: int = 0
    suspicious_total: int = 0
    normal_pinned: int = 0
    normal_total: int = 0
    forged_traceroute_replies: int = 0
    policed_flows: int = 0
    #: (d) attacker outcome.
    attacker_rolls: int = 0
    attacker_perceived_success: bool = False
    #: Final mode per switch at the end of the run.
    final_modes: Dict[str, str] = field(default_factory=dict)


def run_mode_sequence(duration_s: float = 30.0, seed: int = 21,
                      attack_start_s: float = 5.0) -> ModeSequenceResult:
    """Run the scripted Figure 2 scenario and collect the transitions."""
    sim = Simulator(seed=seed)
    net = figure2_topology(sim, critical_capacity=10 * GBPS,
                           detour_capacity=2 * GBPS)
    flows = FlowSet()
    for index, client in enumerate(net.client_hosts):
        flows.add(make_flow(client, net.victim, 1.5 * GBPS,
                            sport=30000 + index))
    fluid = FluidNetwork(net.topo, flows)
    defense = build_figure2_defense(net, fluid)
    deployment = defense.setup(flows)
    for flow in flows:
        install_flow_route(net.topo, flow.path)
    fluid.start()

    result = ModeSequenceResult()

    # (a) the default mode: sample booster gating before any attack.
    def sample_default() -> None:
        for name, agent in deployment.mode_agents.items():
            table = agent.mode_table
            result.default_mode_boosters[name] = {
                "lfa_detector": table.booster_enabled("lfa_detector"),
                "reroute": table.booster_enabled("reroute"),
                "dropper": table.booster_enabled("dropper"),
                "obfuscation": table.booster_enabled("obfuscation"),
            }

    sim.schedule(attack_start_s - 2.0, sample_default)

    normal_paths_at_attack: Dict[int, tuple] = {}

    def snapshot_normal_paths() -> None:
        for flow in flows.normal():
            if flow.path is not None:
                normal_paths_at_attack[flow.flow_id] = flow.path.nodes

    sim.schedule(attack_start_s - 0.5, snapshot_normal_paths)

    attacker = RollingAttacker(
        net.topo, fluid, bots=net.bot_hosts, decoys=net.decoy_servers,
        victim=net.victim, connections_per_bot=200,
        per_connection_bps=10e6)
    attacker.map_then_attack(start_delay=attack_start_s - 1.0)

    sim.run(until=duration_s)

    # (b) propagation.
    for event in deployment.bus.events:
        if (event.attack_type == ATTACK_TYPE
                and event.new_mode == MITIGATION_MODE
                and event.switch not in result.activation_times):
            result.activation_times[event.switch] = event.time
    if defense.detector.detections:
        result.detection_time = defense.detector.detections[0].time
    if result.activation_times and result.detection_time is not None:
        result.propagation_delay_s = (max(result.activation_times.values())
                                      - result.detection_time)

    # (c) selective rerouting and the other mitigation actions.
    for flow in flows:
        if flow.malicious:
            continue
        result.normal_total += 1
        original = normal_paths_at_attack.get(flow.flow_id)
        if original is not None and flow.path is not None \
                and flow.path.nodes == original:
            result.normal_pinned += 1
    for flow in attacker.flows:
        result.suspicious_total += 1
        pinned_by_attacker = attacker.target_hops or []
        actual_switches = [n for n in (flow.path.nodes if flow.path else ())
                           if n in net.topo.switch_names]
        if actual_switches != pinned_by_attacker:
            result.suspicious_rerouted += 1
    result.forged_traceroute_replies = sum(
        p.replies_forged for p in defense.obfuscation.programs.values())
    result.policed_flows = defense.dropper.flows_policed

    # (d) the rolling attacker's view.
    result.attacker_rolls = attacker.roll_count
    result.attacker_perceived_success = attacker.perceived_success
    for name, agent in deployment.mode_agents.items():
        result.final_modes[name] = agent.mode_table.mode_for(ATTACK_TYPE)
    return result


@dataclass
class MixedVectorResult:
    """Co-existing region-scoped modes (the Figure 2 caption claim)."""

    lfa_region: Set[str] = field(default_factory=set)
    ddos_region: Set[str] = field(default_factory=set)
    overlap: Set[str] = field(default_factory=set)
    untouched: Set[str] = field(default_factory=set)


def run_mixed_vector(seed: int = 23) -> MixedVectorResult:
    """Activate two attack-type modes with different hop scopes on a WAN
    and report which switches ended up in which region."""
    sim = Simulator(seed=seed)
    topo = abilene_like(sim)
    install_host_routes(topo)
    install_switch_routes(topo)

    registry = ModeRegistry()
    registry.register(ModeSpec.of(MITIGATION_MODE, ATTACK_TYPE,
                                  boosters_on=("reroute",)))
    registry.register(ModeSpec.of("ddos_filter", "ddos",
                                  boosters_on=("heavy_hitter.filter",)))
    bus = ModeEventBus()
    agents = install_mode_agents(topo, registry, bus=bus)

    # An LFA response around Seattle (radius 1), a volumetric response
    # around Washington (radius 1) — opposite coasts.
    sim.schedule(1.0, agents["sw_seattle"].initiate,
                 ATTACK_TYPE, MITIGATION_MODE, 2)
    sim.schedule(1.0, agents["sw_washington"].initiate,
                 "ddos", "ddos_filter", 2)
    sim.run(until=3.0)

    result = MixedVectorResult()
    for name, agent in agents.items():
        table = agent.mode_table
        in_lfa = table.mode_for(ATTACK_TYPE) == MITIGATION_MODE
        in_ddos = table.mode_for("ddos") == "ddos_filter"
        if in_lfa:
            result.lfa_region.add(name)
        if in_ddos:
            result.ddos_region.add(name)
        if in_lfa and in_ddos:
            result.overlap.add(name)
        if not in_lfa and not in_ddos:
            result.untouched.add(name)
    return result


def main() -> None:  # pragma: no cover - CLI entry
    result = run_mode_sequence()
    print("Figure 2 — multimode sequence")
    print(f"(a) default mode gating at one switch: "
          f"{result.default_mode_boosters.get('sL')}")
    print(f"(b) detection at t={result.detection_time:.3f}s; mitigation "
          f"reached all {len(result.activation_times)} switches within "
          f"{result.propagation_delay_s * 1e3:.1f} ms")
    print(f"(c) suspicious rerouted {result.suspicious_rerouted}/"
          f"{result.suspicious_total}; normal pinned "
          f"{result.normal_pinned}/{result.normal_total}; forged "
          f"traceroute replies {result.forged_traceroute_replies}; "
          f"policed flows {result.policed_flows}")
    print(f"(d) attacker rolls: {result.attacker_rolls}; perceived "
          f"success: {result.attacker_perceived_success}")
    mixed = run_mixed_vector()
    print("mixed-vector regions:",
          f"lfa={sorted(mixed.lfa_region)}",
          f"ddos={sorted(mixed.ddos_region)}",
          f"untouched={len(mixed.untouched)}")


if __name__ == "__main__":  # pragma: no cover
    main()
