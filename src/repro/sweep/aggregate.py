"""Structured aggregation of sweep task records.

Tasks that share a parameter point form a *group* (one series of the
eventual figure); within a group the runner aggregates

* every scalar the driver reported: n / mean / min / max / stddev and a
  95 % confidence half-width (normal approximation — fine for the
  10–50-seed sweeps the figures use), and
* every time series, pointwise across seeds at each sample time.

Aggregation is a pure function of the *sorted* record list, so its
output is identical whatever order workers finished in — this is half
of the runner's workers-independence guarantee (the other half is
per-task seed derivation in :mod:`.spec`).
"""

from __future__ import annotations

import math
import statistics
from typing import Any, Dict, List

#: two-sided 95 % normal quantile
_Z95 = 1.959963984540054


def summarize_values(values: List[float]) -> Dict[str, float]:
    """n/mean/min/max/stddev/ci95 of one scalar across seeds."""
    n = len(values)
    summary = {
        "n": n,
        "mean": statistics.fmean(values),
        "min": min(values),
        "max": max(values),
    }
    if n > 1:
        stddev = statistics.stdev(values)
        summary["stddev"] = stddev
        summary["ci95"] = _Z95 * stddev / math.sqrt(n)
    else:
        summary["stddev"] = 0.0
        summary["ci95"] = 0.0
    return summary


def aggregate_records(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold task records (the runner's checkpoint payloads) into
    per-group scalar and series summaries."""
    groups: Dict[str, Dict[str, Any]] = {}
    for record in sorted(records, key=lambda r: r["task_id"]):
        group = groups.setdefault(record["group"], {
            "params": record["params"],
            "seeds": [],
            "_scalars": {},
            "_series": {},
        })
        group["seeds"].append(record["logical_seed"])
        result = record.get("result", {})
        for name, value in result.get("scalars", {}).items():
            group["_scalars"].setdefault(name, []).append(value)
        for name, samples in result.get("series", {}).items():
            per_time = group["_series"].setdefault(name, {})
            for t, v in samples:
                per_time.setdefault(float(t), []).append(v)

    out: Dict[str, Any] = {}
    for key in sorted(groups):
        group = groups[key]
        scalars = {name: summarize_values(values)
                   for name, values in sorted(group.pop("_scalars").items())}
        series = {}
        for name, per_time in sorted(group.pop("_series").items()):
            series[name] = [
                {"t": t, **summarize_values(per_time[t])}
                for t in sorted(per_time)]
        out[key] = {"params": group["params"], "seeds": group["seeds"],
                    "scalars": scalars, "series": series}
    return out
