"""Sweep specification: a parameter grid x a seed list over one driver.

A :class:`SweepSpec` is the declarative half of the sweep runner: it
names an experiment driver, a base parameter set, an optional grid of
parameter axes, and a list of logical seeds.  :meth:`SweepSpec.tasks`
expands it into a deterministic, totally ordered list of
:class:`SweepTask` — the unit of execution, checkpointing, and resume.

Determinism contract (see DESIGN.md "Sweep runner"):

* Task order is a pure function of the spec: grid axes sorted by name,
  axis values in the given order, seeds in the given order.
* Each task's effective RNG seed is derived with
  :func:`derive_seed` — a SHA-256 of the (experiment, parameter point,
  logical seed) triple — so it is identical across processes, platforms
  and ``PYTHONHASHSEED`` values, and distinct parameter points get
  decorrelated streams even when they share a logical seed list.
* ``task_id`` doubles as the checkpoint filename and embeds a
  fingerprint of the task's full identity, so a resumed sweep can never
  reuse a checkpoint produced under a different spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import hashlib
import itertools
import json
import re
from typing import Any, Dict, Iterable, List, Tuple

#: Bump when task semantics change incompatibly; part of every task
#: fingerprint, so stale checkpoints are re-run rather than trusted.
SPEC_VERSION = 1

_SLUG_UNSAFE = re.compile(r"[^A-Za-z0-9_.=,+-]+")
_MAX_SLUG = 80


def derive_seed(experiment: str, params: Dict[str, Any],
                logical_seed: int) -> int:
    """A stable 63-bit seed for one (experiment, point, seed) triple.

    Uses SHA-256 over a canonical JSON encoding — *never* ``hash()``,
    which is salted per process and would break cross-worker
    reproducibility.
    """
    canonical = json.dumps(
        {"experiment": experiment, "params": params,
         "seed": logical_seed, "version": SPEC_VERSION},
        sort_keys=True, default=str)
    digest = hashlib.sha256(canonical.encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def parse_seeds(text: str) -> List[int]:
    """Parse a ``--seeds`` value: ``0:20``, ``0:20:2``, ``3``, ``1,4,9``."""
    text = text.strip()
    if ":" in text:
        parts = text.split(":")
        if len(parts) not in (2, 3) or not all(
                p.lstrip("-").isdigit() for p in parts):
            raise ValueError(f"bad seed range {text!r}; want START:STOP "
                             f"or START:STOP:STEP")
        bounds = [int(p) for p in parts]
        step = bounds[2] if len(bounds) == 3 else 1
        seeds = list(range(bounds[0], bounds[1], step))
        if not seeds:
            raise ValueError(f"seed range {text!r} is empty")
        return seeds
    try:
        return [int(p) for p in text.split(",")]
    except ValueError:
        raise ValueError(f"bad seed list {text!r}; want N, N,M,... or "
                         f"START:STOP") from None


def params_slug(params: Dict[str, Any]) -> str:
    """A filesystem-safe, human-readable tag for one parameter point.

    Whenever slugging is lossy — unsafe characters collapsed to ``-``
    or the slug truncated — a short digest of the original text is
    appended, so distinct points (e.g. ``'x,y'`` vs ``'x-y'``) can
    never share a slug and silently overwrite each other's
    checkpoints or aggregate into one series.
    """
    if not params:
        return "default"
    joined = ",".join(f"{k}={params[k]}" for k in sorted(params))
    slug = _SLUG_UNSAFE.sub("-", joined)
    if slug != joined or len(slug) > _MAX_SLUG:
        digest = hashlib.sha256(joined.encode()).hexdigest()[:8]
        slug = f"{slug[:_MAX_SLUG]}-{digest}"
    return slug


@dataclass(frozen=True)
class SweepTask:
    """One unit of sweep work: a parameter point plus one seed."""

    experiment: str
    params: Tuple[Tuple[str, Any], ...]
    logical_seed: int
    seed: int  #: effective RNG seed handed to the driver

    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    @property
    def group(self) -> str:
        """Series key: tasks sharing a parameter point aggregate together."""
        return params_slug(self.param_dict)

    @property
    def task_id(self) -> str:
        experiment = _SLUG_UNSAFE.sub("-", self.experiment)
        return f"{experiment}--{self.group}--s{self.logical_seed}"

    def fingerprint(self) -> str:
        """Identity hash checked on resume before trusting a checkpoint."""
        canonical = json.dumps(
            {"experiment": self.experiment, "params": self.param_dict,
             "logical_seed": self.logical_seed, "seed": self.seed,
             "version": SPEC_VERSION}, sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass
class SweepSpec:
    """What to sweep: driver name, base params, grid axes, seeds."""

    experiment: str
    seeds: List[int]
    base_params: Dict[str, Any] = field(default_factory=dict)
    #: axis name -> list of values; the cross product of all axes is run.
    grid: Dict[str, List[Any]] = field(default_factory=dict)
    #: When True, hand drivers the logical seed unchanged instead of the
    #: derived one — for reproducing historical runs keyed on raw seeds.
    raw_seeds: bool = False

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ValueError("a sweep needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError(f"duplicate seeds in {self.seeds}")
        for axis, values in self.grid.items():
            if not values:
                raise ValueError(f"grid axis {axis!r} has no values")

    # ------------------------------------------------------------------
    def points(self) -> Iterable[Dict[str, Any]]:
        """Every parameter point: base params overlaid with one grid cell."""
        axes = sorted(self.grid)
        for combo in itertools.product(*(self.grid[a] for a in axes)):
            point = dict(self.base_params)
            point.update(zip(axes, combo))
            yield point

    def tasks(self) -> List[SweepTask]:
        """The full, deterministically ordered task list."""
        tasks: List[SweepTask] = []
        for point in self.points():
            frozen = tuple(sorted(point.items()))
            for logical in self.seeds:
                seed = (logical if self.raw_seeds
                        else derive_seed(self.experiment, point, logical))
                tasks.append(SweepTask(self.experiment, frozen,
                                       logical, seed))
        # task_id keys the runner's 'done' dict and names checkpoint
        # files, so a collision would silently drop one task's record.
        by_id: Dict[str, SweepTask] = {}
        for task in tasks:
            clash = by_id.setdefault(task.task_id, task)
            if clash is not task:
                raise ValueError(
                    f"task_id collision: {clash.param_dict!r} and "
                    f"{task.param_dict!r} (seed {task.logical_seed}) "
                    f"both slug to {task.task_id!r}")
        return tasks

    def describe(self) -> Dict[str, Any]:
        """JSON-serializable summary, embedded in sweep_summary.json."""
        return {
            "experiment": self.experiment,
            "seeds": list(self.seeds),
            "base_params": dict(self.base_params),
            "grid": {k: list(v) for k, v in self.grid.items()},
            "raw_seeds": self.raw_seeds,
            "version": SPEC_VERSION,
        }
