"""The sweep runner: sharded execution, checkpoints, resume, merge.

Execution model
---------------

``run_sweep`` expands a :class:`~repro.sweep.spec.SweepSpec` into tasks
and runs each through :func:`run_task`:

1. reset this process's telemetry (registry **and** trace) so the task
   starts from a clean slate — under ``ProcessPoolExecutor`` every
   worker owns a private registry anyway (and forked workers must shed
   whatever state they inherited from the parent);
2. resolve and call the driver with the task's derived seed and params;
3. snapshot the registry into the task record;
4. write the record to ``<out>/tasks/<task_id>.json`` atomically
   (temp file + ``os.replace``), which doubles as the crash-safe
   checkpoint.

Resume: with ``resume=True`` a task whose checkpoint exists, parses,
and carries the task's exact fingerprint is *skipped* and its record
reloaded; anything else (missing, truncated by a crash, produced by a
different spec) is re-run.  Without ``resume``, stale task checkpoints
for this spec are removed first so a finished directory always reflects
exactly one coherent sweep.

Determinism: per-task seeds are derived, not shared; records are sorted
by ``task_id`` before aggregation; metric snapshots merge through the
additive (commutative, associative) :meth:`MetricsRegistry.merge`.
Hence ``--workers 8`` and ``--workers 1`` produce byte-identical
aggregates and merged snapshots for the same spec.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
import json
import os
from pathlib import Path
import time
from typing import Any, Callable, Dict, List, Optional

from .. import telemetry
from ..telemetry import WALL_CLOCK_METRICS, MetricsRegistry
from .aggregate import aggregate_records
from .drivers import CheckpointableDriver, resolve_driver
from .spec import SweepSpec, SweepTask

TASK_DIR = "tasks"
SUMMARY_NAME = "sweep_summary.json"
#: Partial engine checkpoint left behind by a preempted task; resumed
#: (after fingerprint validation) by the next run of the same spec.
PART_SUFFIX = ".part.ckpt"
#: Engine events per slice while advancing a checkpointable task.
PREEMPT_STEP_EVENTS = 2048

# Counted in the *coordinator* process, so task failures are visible in
# its --metrics snapshot without polluting the merged per-task metrics
# (those come exclusively from worker snapshots in the task records).
_C_TASK_ERRORS = telemetry.metrics().counter(
    "sweep_task_errors_total",
    "sweep tasks that raised instead of completing, by exception type",
    labelnames=("kind",))

# Metric families that measure *wall-clock* time and therefore cannot
# be identical across executions are excluded from parity views;
# everything else in a sweep's merged snapshot is a pure function of
# (spec, seeds).  The list itself lives in repro.telemetry (one
# definition, imported here and by the determinism gate scripts) and is
# re-exported under its historical name for existing callers.


def stable_metrics(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """The deterministic subset of a metrics snapshot: drop wall-clock
    timing families.  Two sweeps of the same spec agree on this view
    regardless of worker count — the basis of the determinism checks in
    tests and CI."""
    return {name: family for name, family in snapshot.items()
            if name not in WALL_CLOCK_METRICS}


@dataclass
class SweepResult:
    """Everything a finished sweep knows."""

    spec: SweepSpec
    records: List[Dict[str, Any]]  #: one per task, sorted by task_id
    aggregates: Dict[str, Any]
    merged_metrics: Dict[str, Any]
    executed: int = 0
    skipped: int = 0
    wall_seconds: float = 0.0
    out_dir: Optional[Path] = None
    errors: List[Dict[str, str]] = field(default_factory=list)
    #: Marker records of tasks cut off by ``preempt_events``; their
    #: partial checkpoints are picked up by the next ``--resume`` run.
    preempted: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.describe(),
            "n_tasks": (len(self.records) + len(self.errors)
                        + len(self.preempted)),
            "executed": self.executed,
            "skipped": self.skipped,
            "preempted": len(self.preempted),
            "preempted_tasks": [m["task_id"] for m in self.preempted],
            "errors": self.errors,
            "wall_seconds": self.wall_seconds,
            "aggregates": self.aggregates,
            "merged_metrics": self.merged_metrics,
            # The families a determinism comparison must ignore; tools
            # like scripts/check_sweep.py read this instead of keeping
            # their own copy of WALL_CLOCK_METRICS in sync.
            "wall_clock_metrics": list(WALL_CLOCK_METRICS),
        }

    def write_summary(self, path) -> Path:
        path = Path(path)
        _atomic_write_json(path, self.summary())
        return path


# ----------------------------------------------------------------------
# One task (runs inside workers; must stay module-level / picklable)
# ----------------------------------------------------------------------

def run_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one task from its wire form; returns the task record.

    With ``preempt_events`` set and a :class:`CheckpointableDriver`,
    the task runs through the build/advance/finish protocol with a
    bounded event budget: when the budget runs out before the horizon,
    the world is checkpointed to ``tasks/<id>.part.ckpt`` and a
    *preempted marker* record (``{"preempted": True, ...}``) is
    returned instead of a result.  The next run of the same spec
    restores the part-checkpoint (fingerprint-validated) and continues
    where the budget cut off.
    """
    task = SweepTask(payload["experiment"],
                     tuple(tuple(p) for p in payload["params"]),
                     payload["logical_seed"], payload["seed"])
    telemetry.reset()
    driver = resolve_driver(task.experiment)
    out_dir = payload.get("out_dir")
    preempt_events = payload.get("preempt_events")
    # Wall-clock by design: per-task wall_seconds is operator-facing
    # profiling data, excluded from every determinism comparison
    # (aggregate_records drops it; see WALL_CLOCK_METRICS).
    started = time.perf_counter()  # reprolint: disable=RPL002
    if isinstance(driver, CheckpointableDriver) and out_dir is not None:
        outcome = _run_checkpointable(task, driver, out_dir,
                                      preempt_events)
        if outcome.get("preempted"):
            return outcome
        result = outcome["result"]
    else:
        if preempt_events is not None:
            raise ValueError(
                f"driver {task.experiment!r} is not checkpointable (or "
                f"no --out directory for part-checkpoints); "
                f"--preempt-events needs both")
        result = driver(task.seed, task.param_dict)
    record = {
        "task_id": task.task_id,
        "fingerprint": task.fingerprint(),
        "experiment": task.experiment,
        "group": task.group,
        "params": task.param_dict,
        "logical_seed": task.logical_seed,
        "seed": task.seed,
        "wall_seconds": time.perf_counter() - started,  # reprolint: disable=RPL002
        "result": result,
        "metrics": telemetry.metrics().snapshot(),
    }
    if out_dir is not None:
        checkpoint = Path(out_dir) / TASK_DIR / f"{task.task_id}.json"
        _atomic_write_json(checkpoint, record)
        part = Path(out_dir) / TASK_DIR / f"{task.task_id}{PART_SUFFIX}"
        if part.exists():
            part.unlink()  # finished: the partial state is superseded
    return record


def _part_path(out_dir: Any, task: SweepTask) -> Path:
    return Path(out_dir) / TASK_DIR / f"{task.task_id}{PART_SUFFIX}"


def _run_checkpointable(task: SweepTask, driver: Any, out_dir: Any,
                        preempt_events: Optional[int]) -> Dict[str, Any]:
    """Advance one checkpointable task, resuming from and/or writing a
    partial engine checkpoint.  Returns ``{"result": record}`` on
    completion or a preempted marker dict."""
    from ..checkpoint import CheckpointError
    from ..netsim.engine import Simulator
    part = _part_path(out_dir, task)
    world = None
    if part.exists():
        try:
            sim, world, meta = Simulator.restore(part)
            if meta.get("task_fingerprint") != task.fingerprint():
                world = None  # different spec wrote this; start over
        except CheckpointError:
            world = None  # truncated/corrupt (crashed mid-write family)
        if world is None:
            part.unlink()
    if world is None:
        world = driver.build(task.seed, task.param_dict)
    entry_events = world.sim.events_executed
    while not world.done:
        if preempt_events is not None:
            budget = preempt_events - (world.sim.events_executed
                                       - entry_events)
            if budget <= 0:
                world.sim.snapshot(
                    part, state=world,
                    meta={"task_id": task.task_id,
                          "task_fingerprint": task.fingerprint()})
                return {"preempted": True,
                        "task_id": task.task_id,
                        "fingerprint": task.fingerprint(),
                        "events_executed": world.sim.events_executed,
                        "sim_time": world.sim.now,
                        "part_checkpoint": str(part)}
            step = min(PREEMPT_STEP_EVENTS, budget)
        else:
            step = PREEMPT_STEP_EVENTS
        driver.advance(world, max_events=step)
    return {"result": driver.finish(world)}


def _task_payload(task: SweepTask, out_dir: Optional[Path],
                  preempt_events: Optional[int] = None) -> Dict:
    return {"experiment": task.experiment, "params": list(task.params),
            "logical_seed": task.logical_seed, "seed": task.seed,
            "out_dir": None if out_dir is None else str(out_dir),
            "preempt_events": preempt_events}


def atomic_write_json(path: Path, payload: Dict[str, Any]) -> None:
    """Write ``payload`` as pretty JSON via a same-directory temp file +
    ``os.replace`` so readers never observe a partial file.  Public: the
    sharded coordinator reuses it for its summary artifacts."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    os.replace(tmp, path)


#: Backwards-compatible private alias (pre-shard call sites).
_atomic_write_json = atomic_write_json


def _load_checkpoint(path: Path, task: SweepTask) -> Optional[Dict]:
    """The record at ``path`` iff it is a finished run of exactly
    ``task`` (same id *and* fingerprint); None otherwise."""
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if (record.get("task_id") == task.task_id
            and record.get("fingerprint") == task.fingerprint()):
        return record
    return None


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------

def run_sweep(spec: SweepSpec, out_dir=None, workers: int = 1,
              resume: bool = False,
              progress: Optional[Callable[[str], None]] = None,
              preempt_events: Optional[int] = None) -> SweepResult:
    """Run every task of ``spec``; returns the aggregated result.

    ``workers <= 1`` executes inline (no pool — simplest to debug and
    byte-identical to the sharded path); ``workers > 1`` shards over a
    :class:`ProcessPoolExecutor`.  With ``out_dir`` set, per-task
    checkpoints and ``sweep_summary.json`` are written there; with
    ``resume=True``, tasks whose checkpoints match are skipped.

    ``preempt_events`` bounds each checkpointable task to that many
    engine events per invocation: tasks that hit the budget park an
    engine checkpoint in ``tasks/<id>.part.ckpt`` and are reported in
    :attr:`SweepResult.preempted`; a later ``resume=True`` run (with or
    without a budget) restores and continues them.  Requires ``out_dir``
    and checkpointable drivers.
    """
    say = progress if progress is not None else (lambda message: None)
    out_path = None if out_dir is None else Path(out_dir)
    tasks = spec.tasks()
    # Sweep-level wall time: reporting only, never aggregated.
    started = time.perf_counter()  # reprolint: disable=RPL002

    if preempt_events is not None and out_path is None:
        raise ValueError("preempt_events requires an out_dir for the "
                         "partial checkpoints")

    done: Dict[str, Dict[str, Any]] = {}
    pending: List[SweepTask] = []
    for task in tasks:
        checkpoint = (None if out_path is None else
                      out_path / TASK_DIR / f"{task.task_id}.json")
        if resume and checkpoint is not None and checkpoint.exists():
            record = _load_checkpoint(checkpoint, task)
            if record is not None:
                done[task.task_id] = record
                continue
            say(f"[sweep] stale checkpoint for {task.task_id}; re-running")
        elif not resume and checkpoint is not None:
            # Fresh (non-resume) sweep: no leftovers — neither finished
            # records nor partial engine checkpoints survive.
            if checkpoint.exists():
                checkpoint.unlink()
            part = _part_path(out_path, task)
            if part.exists():
                part.unlink()
        pending.append(task)
    skipped = len(done)
    if skipped:
        say(f"[sweep] resume: {skipped}/{len(tasks)} task(s) already "
            f"complete, running {len(pending)}")

    errors: List[Dict[str, str]] = []
    preempted: List[Dict[str, Any]] = []

    def collect(task: SweepTask, record: Dict[str, Any]) -> None:
        if record.get("preempted"):
            preempted.append(record)
            say(f"[sweep] preempted {task.task_id} at "
                f"{record['events_executed']} events "
                f"(partial checkpoint parked)")
        else:
            done[task.task_id] = record
            say(f"[sweep] done {task.task_id}")

    if workers > 1 and len(pending) > 1:
        say(f"[sweep] running {len(pending)} task(s) on "
            f"{workers} workers")
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [(task,
                        pool.submit(run_task,
                                    _task_payload(task, out_path,
                                                  preempt_events)))
                       for task in pending]
            for task, future in futures:
                try:
                    collect(task, future.result())
                except BrokenProcessPool as exc:
                    # Known failure shape: a worker died (OOM/segfault)
                    # and every not-yet-collected future fails with it.
                    _C_TASK_ERRORS.labels("BrokenProcessPool").inc()
                    errors.append(
                        {"task_id": task.task_id,
                         "error": f"worker process died before "
                                  f"completing this task: {exc}"})
                    say(f"[sweep] FAILED {task.task_id}: worker died")
                except Exception as exc:
                    # Unexpected driver failure: count it into telemetry
                    # before swallowing so --metrics shows the loss.
                    _C_TASK_ERRORS.labels(type(exc).__name__).inc()
                    errors.append(
                        {"task_id": task.task_id,
                         "error": f"{type(exc).__name__}: {exc}"})
                    say(f"[sweep] FAILED {task.task_id}: {exc}")
    else:
        for task in pending:
            say(f"[sweep] running {task.task_id}")
            try:
                collect(task, run_task(
                    _task_payload(task, out_path, preempt_events)))
            except (KeyError, ValueError, TypeError) as exc:
                # Known failure shapes: unknown driver name, a parameter
                # point the driver rejects, or a bad signature.
                _C_TASK_ERRORS.labels(type(exc).__name__).inc()
                errors.append({"task_id": task.task_id,
                               "error": f"{type(exc).__name__}: {exc}"})
                say(f"[sweep] FAILED {task.task_id}: {exc}")
            except Exception as exc:
                # Unexpected: still recorded into telemetry and the
                # error list before the sweep moves on.
                _C_TASK_ERRORS.labels(type(exc).__name__).inc()
                errors.append({"task_id": task.task_id,
                               "error": f"{type(exc).__name__}: {exc}"})
                say(f"[sweep] FAILED {task.task_id}: {exc}")

    records = [done[t.task_id] for t in tasks if t.task_id in done]
    merged = MetricsRegistry().merge(
        *(r["metrics"] for r in records)).snapshot()
    result = SweepResult(
        spec=spec, records=records,
        aggregates=aggregate_records(records),
        merged_metrics=merged,
        executed=len(records) - skipped, skipped=skipped,
        wall_seconds=time.perf_counter() - started,  # reprolint: disable=RPL002
        out_dir=out_path, errors=errors, preempted=preempted)
    if out_path is not None:
        result.write_summary(out_path / SUMMARY_NAME)
    return result
