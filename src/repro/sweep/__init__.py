"""Deterministic, checkpointed, process-parallel experiment sweeps.

The sweep runner is how multi-seed evidence gets produced at scale:
``SweepSpec`` (grid x seeds) -> sharded execution with per-task derived
seeds and isolated telemetry -> crash-safe per-task checkpoints ->
structured aggregation (mean/min/max/CI per scalar and per series
point) plus one merged metrics snapshot.

Entry points:

* ``python -m repro sweep <driver> --seeds 0:20 --workers 8 --out DIR``
* :func:`run_sweep` from code (benchmarks drive repetitions through it)
* :func:`register_driver` / ``"module:callable"`` specs for custom
  drivers.

See DESIGN.md "Sweep runner" for the determinism contract.
"""

from .aggregate import aggregate_records, summarize_values
from .drivers import driver_names, register_driver, resolve_driver
from .runner import SweepResult, run_sweep, run_task, stable_metrics
from .spec import (SweepSpec, SweepTask, derive_seed, params_slug,
                   parse_seeds)

__all__ = [
    "SweepResult", "SweepSpec", "SweepTask", "aggregate_records",
    "derive_seed", "driver_names", "params_slug", "parse_seeds",
    "register_driver", "resolve_driver", "run_sweep", "run_task",
    "stable_metrics", "summarize_values",
]
