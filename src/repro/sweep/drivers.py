"""Sweep drivers: named callables the runner fans out over.

A driver is ``fn(seed, params) -> record`` where the record is a
JSON-serializable dict, by convention::

    {"scalars": {name: number, ...},      # aggregated across seeds
     "series":  {name: [[t, v], ...]}}    # aggregated pointwise

Everything else (telemetry isolation, metrics snapshots, checkpoints)
is the runner's job — drivers stay pure experiment code.

Drivers are resolved by name in **worker processes**, so a name must be
resolvable without any in-process registration having happened there:

* built-in names (``figure3``, ``figure3_baseline``, ``figure3_fastflex``)
  live in the table below;
* ``"package.module:callable"`` specs are imported on demand — this is
  how benchmark suites run their own case functions through the runner
  without the sweep package importing benchmark code;
* :func:`register_driver` adds process-local names (tests, notebooks);
  these resolve in forked workers (which inherit the registry) and in
  inline ``workers=1`` runs, but not in spawned workers — use a
  ``module:callable`` spec there.
"""

from __future__ import annotations

from importlib import import_module
from typing import Any, Callable, Dict, List, Tuple

Driver = Callable[[int, Dict[str, Any]], Dict[str, Any]]

_REGISTRY: Dict[str, Driver] = {}


def register_driver(name: str, fn: Driver = None):
    """Register ``fn`` under ``name``; usable as a decorator."""
    if fn is None:
        return lambda f: register_driver(name, f)
    _REGISTRY[name] = fn
    return fn


def resolve_driver(name: str) -> Driver:
    """Look up a driver by registered name, built-in name, or
    ``module:callable`` import spec."""
    driver = _REGISTRY.get(name)
    if driver is not None:
        return driver
    if ":" in name:
        module_name, _, attr = name.partition(":")
        fn = getattr(import_module(module_name), attr, None)
        if not callable(fn):
            raise KeyError(f"driver spec {name!r}: "
                           f"{module_name}.{attr} is not callable")
        return fn
    raise KeyError(
        f"no sweep driver named {name!r}; registered: "
        f"{sorted(_REGISTRY)} (or use a 'module:callable' spec)")


def driver_names() -> List[str]:
    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# Built-in figure drivers
# ----------------------------------------------------------------------

def _figure3_config(seed: int, params: Dict[str, Any]):
    from ..experiments.figure3 import Figure3Config
    fields = set(Figure3Config.__dataclass_fields__)
    unknown = set(params) - fields
    if unknown:
        raise ValueError(
            f"figure3 has no parameter(s) {sorted(unknown)}; "
            f"valid: {sorted(fields)}")
    overrides = dict(params)
    overrides["seed"] = seed
    return Figure3Config(**overrides)


def _series(result) -> List[Tuple[float, float]]:
    return [[t, v] for t, v in result.throughput.samples]


def _summarize(result, config, prefix: str) -> Dict[str, float]:
    scalars = {
        f"{prefix}_mean_during_attack":
            result.mean_during_attack(config),
        f"{prefix}_min_during_attack":
            result.min_during_attack(config),
        f"{prefix}_attacker_rolls": result.rolls,
        f"{prefix}_fluid_allocation_passes":
            result.fluid_allocation_passes,
    }
    if result.detections:
        scalars[f"{prefix}_detection_lag_s"] = (
            result.detections[0].time - config.attack_start_s)
    return scalars


@register_driver("figure3")
def figure3_driver(seed: int, params: Dict[str, Any]) -> Dict[str, Any]:
    """Both systems under the rolling LFA; the paper's Figure 3 point."""
    from ..experiments.figure3 import run_both
    config = _figure3_config(seed, params)
    results = run_both(config)
    record: Dict[str, Any] = {"scalars": {}, "series": {}}
    for name, prefix in (("baseline_sdn", "baseline"),
                         ("fastflex", "fastflex")):
        result = results[name]
        record["scalars"].update(_summarize(result, config, prefix))
        record["series"][name] = _series(result)
    record["scalars"]["gap"] = (
        record["scalars"]["fastflex_mean_during_attack"]
        - record["scalars"]["baseline_mean_during_attack"])
    record["per_system_metrics"] = {
        name: results[name].metrics for name in results}
    return record


# ----------------------------------------------------------------------
# Checkpointable drivers (sweep task preemption)
# ----------------------------------------------------------------------

class CheckpointableDriver:
    """A driver the runner can *preempt* mid-task and resume later from
    an engine checkpoint (``tasks/<id>.part.ckpt``).

    Besides being a plain callable (``driver(seed, params) -> record``),
    a checkpointable driver exposes the build/advance/finish protocol::

        world = driver.build(seed, params)      # construct, don't run
        driver.advance(world, max_events=N)     # bounded slice
        world.done                              # horizon reached?
        record = driver.finish(world)           # summarize

    The world object must round-trip through ``world.sim.snapshot()`` /
    ``Simulator.restore()`` — i.e. follow the checkpoint-pickling rules
    (telemetry by reference, no closures).  ``run_task`` uses the
    protocol only when ``--preempt-events`` is set; the plain callable
    path stays byte-identical to non-checkpointable drivers.
    """

    def build(self, seed: int, params: Dict[str, Any]) -> Any:
        raise NotImplementedError

    def advance(self, world: Any, max_events: int) -> None:
        raise NotImplementedError

    def finish(self, world: Any) -> Dict[str, Any]:
        raise NotImplementedError

    def __call__(self, seed: int, params: Dict[str, Any]
                 ) -> Dict[str, Any]:
        raise NotImplementedError


class Figure3WorldDriver(CheckpointableDriver):
    """Single-system figure3 driver over the world API
    (:func:`repro.experiments.figure3.build_world` and friends)."""

    #: engine events per :meth:`advance` slice on the plain path
    STEP_EVENTS = 4096

    def __init__(self, system: str, prefix: str, series_key: str):
        self.system = system
        self.prefix = prefix
        self.series_key = series_key

    def build(self, seed: int, params: Dict[str, Any]) -> Any:
        from ..experiments.figure3 import build_world
        config = _figure3_config(seed, params)
        return build_world(self.system, config)

    def advance(self, world: Any, max_events: int) -> None:
        from ..experiments.figure3 import advance_world
        advance_world(world, max_events=max_events)

    def finish(self, world: Any) -> Dict[str, Any]:
        from ..experiments.figure3 import finish_world
        result = finish_world(world)
        return {"scalars": _summarize(result, world.config, self.prefix),
                "series": {self.series_key: _series(result)}}

    def __call__(self, seed: int, params: Dict[str, Any]
                 ) -> Dict[str, Any]:
        world = self.build(seed, params)
        while not world.done:
            self.advance(world, max_events=self.STEP_EVENTS)
        return self.finish(world)


register_driver("figure3_baseline",
                Figure3WorldDriver("baseline_sdn", "baseline",
                                   "baseline_sdn"))
register_driver("figure3_fastflex",
                Figure3WorldDriver("fastflex", "fastflex", "fastflex"))
