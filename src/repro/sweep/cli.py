"""``python -m repro sweep`` — the sweep runner's command line.

Examples::

    python -m repro sweep figure3 --seeds 0:20 --workers 8 --out runs/f3
    python -m repro sweep figure3 --seeds 0:20 --out runs/f3 --resume
    python -m repro sweep figure3 --seeds 0:8 --set duration_s=40 \\
        --grid connections_per_bot=50,200,400 --out runs/strength
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import Any, Dict, List

from .. import telemetry
from .drivers import driver_names
from .runner import run_sweep
from .spec import SweepSpec, parse_seeds


def _parse_value(text: str) -> Any:
    """``200`` -> int, ``1.5`` -> float, ``True`` -> bool, else str."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _parse_assignments(pairs: List[str], parser, flag: str,
                       parse: bool = True) -> Dict[str, Any]:
    """``KEY=VALUE`` pairs -> dict; ``parse=False`` keeps raw strings
    so multi-value flags can split on ',' *before* literal_eval (which
    would otherwise read ``50,200,400`` as one tuple)."""
    out: Dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            parser.error(f"{flag} wants KEY=VALUE, got {pair!r}")
        out[key] = _parse_value(value) if parse else value
    return out


def _format_aggregates(aggregates: Dict[str, Any]) -> str:
    lines = []
    for group, data in aggregates.items():
        lines.append(f"{group}  (n={len(data['seeds'])} seeds)")
        for name, stats in data["scalars"].items():
            lines.append(
                f"  {name:<36} mean {stats['mean']:>10.4g}  "
                f"min {stats['min']:>10.4g}  max {stats['max']:>10.4g}  "
                f"±{stats['ci95']:.3g} (95% CI)")
    return "\n".join(lines)


def sweep_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Deterministic multi-seed experiment sweeps "
                    "(checkpointed, resumable, process-parallel)")
    parser.add_argument(
        "experiment",
        help=f"driver to sweep: one of {driver_names()} or a "
             f"'module:callable' spec")
    parser.add_argument(
        "--seeds", default="0:5", metavar="SPEC",
        help="logical seeds: START:STOP[:STEP] or N,M,... (default 0:5)")
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = run inline; results are identical)")
    parser.add_argument(
        "--out", metavar="DIR", default=None,
        help="checkpoint/summary directory (default sweeps/<experiment>)")
    parser.add_argument(
        "--resume", action="store_true",
        help="skip tasks whose checkpoints in --out are already "
             "complete and continue preempted ones from their partial "
             "engine checkpoints")
    parser.add_argument(
        "--preempt-events", type=int, default=None, metavar="N",
        help="budget each checkpointable task to N engine events per "
             "invocation; tasks over budget park a tasks/<id>.part.ckpt "
             "and are finished by a later --resume run")
    parser.add_argument(
        "--set", dest="base", action="append", default=[],
        metavar="KEY=VALUE", help="fixed driver parameter (repeatable)")
    parser.add_argument(
        "--grid", action="append", default=[], metavar="KEY=V1,V2,...",
        help="grid axis; the cross product of axes is swept (repeatable)")
    parser.add_argument(
        "--raw-seeds", action="store_true",
        help="pass logical seeds straight to the driver instead of "
             "deriving decorrelated per-task seeds")
    parser.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="write the merged (cross-worker) metrics snapshot to FILE")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress lines")
    args = parser.parse_args(argv)

    base = _parse_assignments(args.base, parser, "--set")
    grid = {}
    for key, raw in _parse_assignments(args.grid, parser, "--grid",
                                       parse=False).items():
        pieces = raw.split(",")
        if not all(pieces):
            parser.error(f"--grid {key}: empty value in {raw!r}")
        grid[key] = [_parse_value(v) for v in pieces]
    try:
        seeds = parse_seeds(args.seeds)
    except ValueError as exc:
        parser.error(str(exc))
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.preempt_events is not None and args.preempt_events < 1:
        parser.error("--preempt-events must be >= 1")

    spec = SweepSpec(experiment=args.experiment, seeds=seeds,
                     base_params=base, grid=grid,
                     raw_seeds=args.raw_seeds)
    out_dir = args.out if args.out is not None else \
        f"sweeps/{args.experiment.replace(':', '-')}"
    progress = None if args.quiet else \
        (lambda message: print(message, file=sys.stderr))

    result = run_sweep(spec, out_dir=out_dir, workers=args.workers,
                       resume=args.resume, progress=progress,
                       preempt_events=args.preempt_events)

    preempt_note = (f", {len(result.preempted)} preempted"
                    if result.preempted else "")
    print(f"sweep {args.experiment}: {len(result.records)} task(s) "
          f"({result.executed} executed, {result.skipped} resumed"
          f"{preempt_note}) "
          f"in {result.wall_seconds:.1f}s -> {result.out_dir}")
    if result.preempted:
        print(f"[sweep] {len(result.preempted)} task(s) over the "
              f"--preempt-events budget; rerun with --resume to "
              f"continue them", file=sys.stderr)
    print(_format_aggregates(result.aggregates))
    if args.metrics is not None:
        # The sweep-level snapshot: every worker's registry, merged.
        registry = telemetry.metrics()
        registry.reset()
        registry.merge(result.merged_metrics)
        registry.write_json(args.metrics)
        print(f"[telemetry] wrote merged metrics snapshot to "
              f"{args.metrics}", file=sys.stderr)
    for error in result.errors:
        print(f"FAILED {error['task_id']}: {error['error']}",
              file=sys.stderr)
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(sweep_main())
