"""Structured event tracing: typed, timestamped, append-only records.

Where the registry answers "how many / how much", the trace answers
"*when* did each thing happen" — which is what FastFlex's evaluation
actually argues about: probe-carried mode changes land within link RTTs,
detection windows overlap, repurposing downtime is bounded.  Every record
carries both the simulation clock (the time the event is *about*) and the
wall clock (profiling and cross-run correlation).

The trace is **disabled by default** and every ``emit`` call starts with
one attribute check, so instrumented hot paths pay near-zero cost until a
run opts in (``python -m repro ... --trace FILE`` or
:meth:`EventTrace.enable`).  Records are held in memory and exported as
JSON Lines — one object per line, streamable and greppable.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Iterator, List

#: Hard cap on retained events unless a capacity is chosen explicitly;
#: protects multi-minute packet-level runs from unbounded growth.
DEFAULT_CAPACITY = 1_000_000


class TraceEvent:
    """One structured record: a kind, two clocks, and free-form fields."""

    __slots__ = ("kind", "sim_time", "wall_time", "fields")

    def __init__(self, kind: str, sim_time: float, wall_time: float,
                 fields: Dict[str, Any]) -> None:
        self.kind = kind
        self.sim_time = sim_time
        self.wall_time = wall_time
        self.fields = fields

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"kind": self.kind,
                                  "sim_time": self.sim_time,
                                  "wall_time": self.wall_time}
        record.update(self.fields)
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceEvent({self.kind!r}, t={self.sim_time:.6f}, "
                f"{self.fields})")


class EventTrace:
    """Append-only event log with a shared context and JSONL export."""

    def __init__(self, enabled: bool = False,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("trace capacity must be >= 1")
        self.enabled = enabled
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        self.dropped = 0
        #: Fields merged into every event (e.g. which system/run emits).
        self.context: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    def enable(self) -> "EventTrace":
        self.enabled = True
        return self

    def disable(self) -> None:
        self.enabled = False

    def set_context(self, **fields: Any) -> None:
        """Merge ``fields`` into every subsequently emitted event."""
        self.context.update(fields)

    def clear_context(self, *names: str) -> None:
        """Drop named context fields, or all of them when none given."""
        if not names:
            self.context.clear()
        for name in names:
            self.context.pop(name, None)

    # ------------------------------------------------------------------
    def emit(self, kind: str, sim_time: float, **fields: Any) -> None:
        """Record one event.  No-op (one attribute test) when disabled."""
        if not self.enabled:
            return
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        if self.context:
            merged = dict(self.context)
            merged.update(fields)
            fields = merged
        self.events.append(
            TraceEvent(kind, sim_time, time.time(), fields))

    # ------------------------------------------------------------------
    # Queries (for tests and experiments)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def kinds(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def between(self, t0: float, t1: float) -> List[TraceEvent]:
        """Events with ``t0 <= sim_time < t1`` (same half-open convention
        as :meth:`repro.netsim.monitor.TimeSeries.window`)."""
        return [e for e in self.events if t0 <= e.sim_time < t1]

    # ------------------------------------------------------------------
    def drain(self) -> List[TraceEvent]:
        """Return all buffered events and clear the buffer.

        The context, capacity, ``enabled`` flag, and cumulative
        ``dropped`` count are kept — draining is the streaming-export
        primitive (``python -m repro serve`` drains to a JSONL stream
        between engine slices), not a reset.  Draining frees buffer
        capacity, so a long-lived run that drains faster than it emits
        never drops events.
        """
        events = self.events
        self.events = []
        return events

    def state_dict(self) -> Dict[str, Any]:
        """JSON-serializable full state, for engine checkpoints."""
        return {
            "enabled": self.enabled,
            "capacity": self.capacity,
            "dropped": self.dropped,
            "context": dict(self.context),
            "events": [event.to_dict() for event in self.events],
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output in place (checkpoint
        restore: same object identity, new contents)."""
        self.enabled = bool(state["enabled"])
        self.capacity = int(state["capacity"])
        self.dropped = int(state["dropped"])
        self.context = dict(state["context"])
        events: List[TraceEvent] = []
        for record in state["events"]:
            fields = {key: value for key, value in record.items()
                      if key not in ("kind", "sim_time", "wall_time")}
            events.append(TraceEvent(record["kind"], record["sim_time"],
                                     record["wall_time"], fields))
        self.events = events

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all events and context; keep the enabled flag."""
        self.events.clear()
        self.context.clear()
        self.dropped = 0

    def to_jsonl(self) -> str:
        return "".join(json.dumps(e.to_dict(), sort_keys=True,
                                  default=_jsonable) + "\n"
                       for e in self.events)

    def write_jsonl(self, path: Any) -> int:
        """Write every event as one JSON object per line; returns the
        number of events written."""
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())
        return len(self.events)


def _jsonable(value: Any) -> Any:
    """Fallback serializer: tuples of node names, sets, objects with a
    ``name`` — degrade to something greppable rather than raising."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    name = getattr(value, "name", None)
    if name is not None:
        return name
    return repr(value)


#: Sentinel trace used when instrumented code runs with tracing off but a
#: caller wants an object to hand around unconditionally.
NULL_TRACE = EventTrace(enabled=False, capacity=1)
