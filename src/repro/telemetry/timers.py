"""Phase timers: wall-clock profiling of named hot sections.

``phase_timer`` wraps a block, measures its wall-clock duration, and
feeds a labeled histogram in the registry (``phase_duration_seconds``
with the phase name as label).  When a trace is supplied and enabled it
additionally emits a ``phase`` event, so profiling data lands on the
same timeline as the simulation's own events.

The timer costs two ``perf_counter`` calls plus one histogram observe
per block — fine around an allocation pass or an experiment stage, too
heavy *inside* per-flow loops (instrument those with plain counters).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional

from .registry import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from .trace import EventTrace

PHASE_METRIC = "phase_duration_seconds"


class PhaseTiming:
    """Mutable handle yielded by :func:`phase_timer`; exposes the elapsed
    wall time after the block exits (and a running view inside it)."""

    __slots__ = ("phase", "started", "elapsed")

    def __init__(self, phase: str, started: float) -> None:
        self.phase = phase
        self.started = started
        self.elapsed: Optional[float] = None

    def so_far(self) -> float:
        return time.perf_counter() - self.started


def phase_histogram(registry: MetricsRegistry) -> Histogram:
    """The labeled histogram family all phase timers feed."""
    return registry.histogram(
        PHASE_METRIC, "wall-clock duration of named phases",
        labelnames=("phase",), buckets=DEFAULT_BUCKETS)


@contextmanager
def phase_timer(phase: str, registry: Optional[MetricsRegistry] = None,
                trace: Optional[EventTrace] = None,
                sim_time: Optional[float] = None
                ) -> Iterator[PhaseTiming]:
    """Time a block as ``with phase_timer("allocate") as timing: ...``.

    ``registry`` defaults to the process-wide one; pass ``trace`` (and
    the current ``sim_time``) to also emit a ``phase`` trace event.
    """
    if registry is None:
        from . import metrics
        registry = metrics()
    timing = PhaseTiming(phase, time.perf_counter())
    try:
        yield timing
    finally:
        timing.elapsed = time.perf_counter() - timing.started
        phase_histogram(registry).labels(phase).observe(timing.elapsed)
        if trace is not None and trace.enabled:
            trace.emit("phase", 0.0 if sim_time is None else sim_time,
                       phase=phase, elapsed_s=timing.elapsed)
