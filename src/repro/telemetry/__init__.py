"""Telemetry: the observability layer every subsystem reports through.

Three cooperating pieces (see DESIGN.md "Telemetry" for the rationale
and the overhead budget):

* :class:`MetricsRegistry` — process-wide counters / gauges / histograms
  with labels.  Aggregate "how many, how much" numbers: allocation
  passes, dirty-flag fast-path hits, probes sent, FEC recoveries.
* :class:`EventTrace` — append-only structured records with *both* the
  simulation clock and the wall clock, exported as JSON Lines.  The
  per-event "when exactly" timeline: mode transitions with cause,
  detections, repurposing windows, state transfers.
* :func:`phase_timer` — wall-clock profiling of named sections, feeding
  a labeled histogram (and optionally the trace).

Instrumented modules cache metric objects from the **process-wide
default registry** (:func:`metrics`) at import time; the default
:func:`trace` starts disabled so hot paths pay one attribute check until
a run opts in.  :func:`reset` zeroes both in place between runs —
cached metric references held by live components remain valid.

The package is dependency-free and imports nothing from the rest of
:mod:`repro`, so any layer (engine, allocator, protocol, boosters,
experiments) may use it without import cycles.
"""

from .registry import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                       MetricError, Metric, MetricsRegistry)
from .timers import PHASE_METRIC, PhaseTiming, phase_histogram, phase_timer
from .trace import NULL_TRACE, EventTrace, TraceEvent

__all__ = [
    "Counter", "DEFAULT_BUCKETS", "EventTrace", "Gauge", "Histogram",
    "Metric", "MetricError", "MetricsRegistry", "NULL_TRACE",
    "PHASE_METRIC", "PhaseTiming", "TraceEvent", "WALL_CLOCK_METRICS",
    "metrics", "phase_histogram", "phase_timer", "reset", "trace",
]

#: Metric families whose values are wall-clock durations and therefore
#: legitimately differ between byte-identical runs.  Determinism gates
#: (`scripts/check_restore.py`, `scripts/check_sweep.py`) and the sweep
#: runner's parity digest exclude exactly these families — one list,
#: imported everywhere, so the exclusion can never drift (reprolint
#: RPL007 enforces the single definition).
WALL_CLOCK_METRICS = (PHASE_METRIC, "shard_barrier_seconds")

#: The process-wide default instances.  Created once and never replaced
#: (reset happens in place) so modules may cache them and their metrics.
_DEFAULT_REGISTRY = MetricsRegistry()
_DEFAULT_TRACE = EventTrace(enabled=False)


def metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _DEFAULT_REGISTRY


def trace() -> EventTrace:
    """The process-wide event trace (disabled until enabled)."""
    return _DEFAULT_TRACE


def reset() -> None:
    """Zero the default registry and empty the default trace, in place.

    Experiments call this between runs so exported snapshots cover one
    run only; tests call it for isolation.  Metric objects cached by
    instrumented modules stay registered and simply restart from zero.
    """
    _DEFAULT_REGISTRY.reset()
    _DEFAULT_TRACE.reset()
