"""Metrics registry: counters, gauges, and histograms with labels.

The registry is the aggregate half of the telemetry subsystem (the
:mod:`~repro.telemetry.trace` module is the per-event half).  It is
deliberately minimal — a process-local, dependency-free subset of the
Prometheus client model — because its increments sit on the simulator's
hottest paths (the fluid allocator runs every 10 ms of simulated time).

Overhead budget (see DESIGN.md "Telemetry"):

* ``Counter.inc`` / ``Gauge.set`` are one attribute add/store; callers on
  hot paths cache the metric (or labeled child) object once, so no dict
  lookup happens per event.
* Labeled children are created on first :meth:`~Metric.labels` call and
  cached by the caller; ``labels()`` itself is not hot-path safe.
* Snapshots and JSON export walk the registry only when explicitly
  requested (end of run, ``--metrics`` flag, benchmark teardown).

Instrumented modules use the process-wide default registry from
:func:`repro.telemetry.metrics`; isolated registries exist for tests.
"""

from __future__ import annotations

import bisect
import json
import threading
from typing import (Any, Callable, Dict, Iterable, List, Optional, Tuple,
                    Type, cast)

LabelValues = Tuple[str, ...]

#: Default histogram buckets (seconds-scale: micro to tens of seconds).
DEFAULT_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0,
                   10.0, 30.0)


class MetricError(ValueError):
    """Raised on metric misuse (name clash, wrong label set, ...)."""


class Metric:
    """Base of all metric families.

    A family without ``labelnames`` is used directly (``counter.inc()``);
    with labelnames, per-label-value children are obtained via
    :meth:`labels` and used the same way.
    """

    kind = "metric"

    def __init__(self, name: str, description: str = "",
                 labelnames: Iterable[str] = ()) -> None:
        self.name = name
        self.description = description
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._children: Dict[LabelValues, "Metric"] = {}

    # ------------------------------------------------------------------
    def labels(self, *values: str, **kw: str) -> "Metric":
        """Get (or create) the child for one label-value combination."""
        if kw:
            if values:
                raise MetricError(
                    f"{self.name}: pass label values positionally or by "
                    f"keyword, not both")
            try:
                values = tuple(str(kw[name]) for name in self.labelnames)
            except KeyError as exc:
                raise MetricError(
                    f"{self.name}: missing label {exc.args[0]!r}; "
                    f"expected {self.labelnames}") from None
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise MetricError(
                f"{self.name}: expected {len(self.labelnames)} label "
                f"values {self.labelnames}, got {len(values)}")
        child = self._children.get(values)
        if child is None:
            child = self._make_child()
            self._children[values] = child
        return child

    def _make_child(self) -> "Metric":
        raise NotImplementedError

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero this family's value and every child's, in place (cached
        references held by instrumented code stay valid)."""
        self._reset_value()
        for child in self._children.values():
            child._reset_value()

    def _reset_value(self) -> None:
        raise NotImplementedError

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable view of this family.

        The view is *round-trippable*: it carries the label names (and,
        for histograms, the exact bucket bounds) so a snapshot taken in
        one process can be folded into another process's registry with
        :meth:`MetricsRegistry.merge`.
        """
        data: Dict[str, Any] = {"kind": self.kind,
                                "value": self._snap_value()}
        if self.description:
            data["description"] = self.description
        if self.labelnames:
            data["labelnames"] = list(self.labelnames)
            data["labels"] = {
                ",".join(values): child._snap_value()
                for values, child in sorted(self._children.items())}
        return data

    def _snap_value(self) -> Any:
        raise NotImplementedError

    def _merge_snap(self, value: Any) -> None:
        """Fold one snapshot value (the ``_snap_value`` form) into this
        metric.  Merging is additive — see :meth:`MetricsRegistry.merge`
        for the per-kind semantics."""
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str = "", description: str = "",
                 labelnames: Iterable[str] = ()) -> None:
        super().__init__(name, description, labelnames)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def _make_child(self) -> "Counter":
        return Counter(self.name)

    def _reset_value(self) -> None:
        self.value = 0.0

    def _snap_value(self) -> float:
        return self.value

    def _merge_snap(self, value: Any) -> None:
        self.value += float(value)


class Gauge(Metric):
    """A value that can go up and down; optionally pulled from a callback."""

    kind = "gauge"

    def __init__(self, name: str = "", description: str = "",
                 labelnames: Iterable[str] = ()) -> None:
        super().__init__(name, description, labelnames)
        self.value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def set_function(self, fn: Optional[Callable[[], float]]) -> None:
        """Pull the value from ``fn`` at snapshot time instead."""
        self._fn = fn

    def _make_child(self) -> "Gauge":
        return Gauge(self.name)

    def _reset_value(self) -> None:
        self.value = 0.0
        self._fn = None

    def _snap_value(self) -> float:
        if self._fn is not None:
            return self._fn()
        return self.value

    def _merge_snap(self, value: Any) -> None:
        # Gauges merge by summation: for worker-sharded runs the natural
        # reading of e.g. "events executed" or "queue depth" across
        # workers is the total.  Last-value semantics cannot survive a
        # merge of concurrent snapshots anyway; callers needing a
        # per-worker view keep the unmerged snapshots.
        self.value += float(value)


class Histogram(Metric):
    """Cumulative-bucket histogram of observed values."""

    kind = "histogram"

    def __init__(self, name: str = "", description: str = "",
                 labelnames: Iterable[str] = (),
                 buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, description, labelnames)
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise MetricError(f"{name}: histogram needs >= 1 bucket bound")
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, buckets=self.buckets)

    def _reset_value(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def _snap_value(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "bounds": list(self.buckets),
            "buckets": {
                **{f"le_{bound:g}": cumulative
                   for bound, cumulative in zip(
                       self.buckets, _cumulate(self.counts[:-1]))},
                "inf": self.count,
            },
        }

    def _merge_snap(self, value: Any) -> None:
        bounds = tuple(value.get("bounds", ()))
        if bounds and bounds != self.buckets:
            raise MetricError(
                f"{self.name}: cannot merge histogram with bounds "
                f"{bounds} into bounds {self.buckets}")
        cumulative = value.get("buckets", {})
        previous = 0
        for index, bound in enumerate(self.buckets):
            upto = cumulative.get(f"le_{bound:g}", previous)
            self.counts[index] += upto - previous
            previous = upto
        self.counts[-1] += value["count"] - previous
        self.sum += value["sum"]
        self.count += value["count"]


def _zero_snap(value: Any) -> bool:
    """True when a snapshot value carries no information to merge."""
    if isinstance(value, dict):  # histogram
        return not value.get("count")
    return not value


def _cumulate(counts: Iterable[int]) -> List[int]:
    total = 0
    out: List[int] = []
    for count in counts:
        total += count
        out.append(total)
    return out


class MetricsRegistry:
    """Holds metric families by name; get-or-create and snapshot/export.

    Family constructors are idempotent: asking twice for the same name
    returns the same object, so instrumented modules can cache metrics at
    import time while tests re-request them by name.  Re-requesting with
    a *different* type or label set is an error — silent divergence
    between two call sites is exactly what a registry exists to prevent.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def counter(self, name: str, description: str = "",
                labelnames: Iterable[str] = ()) -> Counter:
        # _check guarantees the stored metric is a Counter.
        return cast(Counter, self._get_or_create(
            Counter, name, description, labelnames))

    def gauge(self, name: str, description: str = "",
              labelnames: Iterable[str] = ()) -> Gauge:
        return cast(Gauge, self._get_or_create(
            Gauge, name, description, labelnames))

    def histogram(self, name: str, description: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = Histogram(name, description, labelnames,
                                       buckets=buckets)
                    self._metrics[name] = metric
        self._check(metric, Histogram, name, labelnames)
        return cast(Histogram, metric)

    def _get_or_create(self, cls: Type[Metric], name: str,
                       description: str,
                       labelnames: Iterable[str]) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = cls(name, description, labelnames)
                    self._metrics[name] = metric
        self._check(metric, cls, name, labelnames)
        return metric

    @staticmethod
    def _check(metric: Metric, cls: Type[Metric], name: str,
               labelnames: Iterable[str]) -> None:
        if not isinstance(metric, cls):
            raise MetricError(
                f"{name!r} already registered as {metric.kind}, "
                f"not {cls.kind}")
        if tuple(labelnames) != metric.labelnames:
            raise MetricError(
                f"{name!r} already registered with labels "
                f"{metric.labelnames}, not {tuple(labelnames)}")

    # ------------------------------------------------------------------
    def get(self, name: str) -> Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise KeyError(f"no metric named {name!r}; have "
                           f"{sorted(self._metrics)}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def reset(self) -> None:
        """Zero every metric in place.  Cached metric objects held by
        instrumented modules keep working and stay registered."""
        for metric in self._metrics.values():
            metric.reset()

    # ------------------------------------------------------------------
    def merge(self,
              *snapshots: Dict[str, Dict[str, Any]]) -> "MetricsRegistry":
        """Fold one or more :meth:`snapshot` dicts into this registry.

        This is how per-worker telemetry becomes one sweep-level view:
        every sweep worker runs against its own (process-local) registry,
        returns ``registry.snapshot()``, and the coordinator merges the
        snapshots into a fresh registry.  Merging is **additive** and
        therefore associative and commutative:

        * counters and gauges sum their values (gauge last-value
          semantics cannot survive a merge of concurrent runs; the
          total is the only order-independent reading);
        * histograms add per-bucket counts, ``sum`` and ``count``
          (bucket bounds must match exactly);
        * labeled children merge label-by-label — families are created
          with the snapshot's recorded ``labelnames``, so label sets
          stay consistent with live instrumentation.

        Families absent from this registry are created on the fly;
        families present in both must agree on kind and label names
        (:class:`MetricError` otherwise).  Returns ``self`` so callers
        can chain ``MetricsRegistry().merge(a, b).snapshot()``.

        Zero-valued entries (a reset-but-untouched counter, a histogram
        with no observations) are skipped: they contribute nothing, and
        skipping them makes the merged result independent of *which*
        process happened to have instantiated a family — without it,
        sharding the same tasks over a different worker count could
        change the merged snapshot's key set.
        """
        kinds: Dict[str, Callable[[str, str, Iterable[str]], Metric]] = {
            Counter.kind: self.counter, Gauge.kind: self.gauge}
        for snap in snapshots:
            for name in sorted(snap):
                family = snap[name]
                kind = family.get("kind", Counter.kind)
                value = family["value"]
                live_labels = {
                    joined: child
                    for joined, child in family.get("labels", {}).items()
                    if not _zero_snap(child)}
                if _zero_snap(value) and not live_labels:
                    continue
                labelnames = tuple(family.get("labelnames", ()))
                metric: Metric
                if kind == Histogram.kind:
                    bounds: Optional[Tuple[float, ...]] = None
                    for candidate in [family.get("value")] + list(
                            family.get("labels", {}).values()):
                        if isinstance(candidate, dict) and \
                                candidate.get("bounds"):
                            bounds = tuple(candidate["bounds"])
                            break
                    metric = self.histogram(
                        name, family.get("description", ""), labelnames,
                        buckets=bounds or DEFAULT_BUCKETS)
                elif kind in kinds:
                    metric = kinds[kind](
                        name, family.get("description", ""), labelnames)
                else:
                    raise MetricError(
                        f"{name!r}: cannot merge unknown kind {kind!r}")
                if not _zero_snap(value):
                    metric._merge_snap(value)
                for joined, child in live_labels.items():
                    metric.labels(*joined.split(","))._merge_snap(child)
        return self

    # ------------------------------------------------------------------
    def restore_snapshot(
            self, snapshot: Dict[str, Dict[str, Any]]) -> "MetricsRegistry":
        """Restore this registry *exactly* to a :meth:`snapshot`, in place.

        Where :meth:`merge` folds snapshots additively (and skips
        zero-valued entries so worker sharding stays key-set
        independent), ``restore_snapshot`` is the checkpoint/restore
        primitive: every live family is zeroed, then every family in
        the snapshot — including zero-valued ones and zero-valued
        labeled children — is recreated with its exact kind, label
        names, bucket bounds, and values.  After a restore,
        ``registry.snapshot()`` equals the input snapshot modulo
        families the snapshot never mentioned (those stay registered
        but zeroed, which is what in-place :meth:`reset` guarantees
        cached metric objects anyway).

        Kind or label-set conflicts with live families raise
        :class:`MetricError` — restoring a checkpoint into a process
        whose instrumentation disagrees with the checkpoint's is an
        error worth surfacing, not papering over.
        """
        for metric in self._metrics.values():
            metric.reset()
        for name in sorted(snapshot):
            family = snapshot[name]
            kind = family.get("kind", Counter.kind)
            labelnames = tuple(family.get("labelnames", ()))
            description = family.get("description", "")
            value = family["value"]
            metric: Metric
            if kind == Histogram.kind:
                bounds: Optional[Tuple[float, ...]] = None
                for candidate in [value] + list(
                        family.get("labels", {}).values()):
                    if isinstance(candidate, dict) and candidate.get("bounds"):
                        bounds = tuple(candidate["bounds"])
                        break
                metric = self.histogram(name, description, labelnames,
                                        buckets=bounds or DEFAULT_BUCKETS)
            elif kind == Counter.kind:
                metric = self.counter(name, description, labelnames)
            elif kind == Gauge.kind:
                metric = self.gauge(name, description, labelnames)
            else:
                raise MetricError(
                    f"{name!r}: cannot restore unknown kind {kind!r}")
            metric._reset_value()
            if not _zero_snap(value):
                metric._merge_snap(value)
            for joined, child_value in family.get("labels", {}).items():
                child = metric.labels(*joined.split(","))
                child._reset_value()
                if not _zero_snap(child_value):
                    child._merge_snap(child_value)
        return self

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A JSON-serializable dict of every family's current state."""
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}

    def write_json(self, path: Any) -> None:
        with open(path, "w") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
