"""LFA detection booster (§4.1).

Detects link-flooding attacks from two signals, exactly as the paper
prescribes: (a) high load on an adjacent link, and (b) persistent,
low-rate flows toward a destination prefix, found by monitoring per-flow
TCP state in the data plane.

Two faces, one booster:

* **Packet level** — :class:`LfaDetectorProgram` feeds every packet into
  a bounded :class:`~repro.dataplane.flow_table.FlowTable`, whose
  ``persistent_low_rate`` query is signal (b).  Unit tests and the
  data-plane microbenchmarks exercise this path.
* **Fluid level** — a periodic per-switch check reads the same signals
  off the fluid model (link utilization; per-connection rates of the
  flows crossing the hot link).  On detection it marks flows suspicious
  and *initiates a distributed mode change* through the switch's local
  :class:`~repro.core.mode_protocol.ModeChangeAgent` — no controller
  involved.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import compress
from typing import Dict, List, Optional, Tuple

from ..core.booster import Booster, GatedProgram
from ..core.dataflow import DataflowGraph
from ..core.mode_protocol import NETWORK_WIDE_SCOPE
from ..core.ppm import PpmRole
from ..dataplane.flow_table import FlowTable
from ..dataplane.resources import ResourceVector
from ..netsim.fluid import FluidNetwork
from ..netsim.packet import Packet, PacketKind, TcpFlags
from ..netsim.switch import ProgrammableSwitch, ProgramResult
from ..telemetry import metrics, trace
from .base import flow_table_ppm, logic_ppm, parser_ppm

ATTACK_TYPE = "lfa"
MITIGATION_MODE = "lfa_mitigate"

_MET = metrics()
_TRACE = trace()
_C_DETECTIONS = _MET.counter(
    "booster_detections_total", "attack detections by booster",
    labelnames=("booster",))
_C_FLOWS_FLAGGED = _MET.counter(
    "booster_flows_flagged_total",
    "flows marked suspicious by detection classifiers")
_C_ALL_CLEAR = _MET.counter(
    "booster_all_clear_total",
    "detector-initiated reversions to the default mode")


@dataclass
class Detection:
    """One detection event (for experiments and tests)."""

    time: float
    switch: str
    link: Tuple[str, str]
    utilization: float
    suspicious_flows: int
    attack_rate_bps: float


class LfaDetectorProgram(GatedProgram):
    """Per-switch packet-path detector state (the per-flow TCP table)."""

    supports_batch = True

    def __init__(self, booster_name: str, name: str, capacity: int = 4096):
        table = FlowTable(f"{name}.table", capacity=capacity)
        super().__init__(booster_name, name, table.resource_requirement())
        self.table = table

    def process_enabled(self, switch: ProgrammableSwitch,
                        packet: Packet) -> ProgramResult:
        if packet.kind != PacketKind.DATA:
            return None
        flags = packet.tcp_flags
        self.table.observe(
            packet.flow_key, switch.sim.now, size_bytes=packet.size_bytes,
            syn=bool(flags & TcpFlags.SYN), ack=bool(flags & TcpFlags.ACK),
            fin=bool(flags & TcpFlags.FIN), rst=bool(flags & TcpFlags.RST))
        return None

    def process_batch_enabled(self, switch: ProgrammableSwitch,
                              batch) -> None:
        """Vectorized twin: one :meth:`FlowTable.observe_batch` call per
        window.  Flag columns are only materialized when the window
        actually carries TCP flags (all-false flags are a no-op in the
        TCP state machine, so omitting them is byte-identical and keeps
        the table's coalesced no-eviction fast path eligible)."""
        mask = batch.data_mask()
        now = switch.sim.now
        if batch.all_data:
            keys = batch.flow_keys
            sizes = batch.size_bytes
            flags = batch.column("tcp_flags")
        else:
            selected = list(compress(
                zip(batch.flow_keys, batch.size_bytes,
                    batch.column("tcp_flags")), mask))
            if not selected:
                return
            keys = [row[0] for row in selected]
            sizes = [row[1] for row in selected]
            flags = [row[2] for row in selected]
        if not any(flags):
            self.table.observe_batch(keys, now, sizes)
            return
        self.table.observe_batch(
            keys, now, sizes,
            syn=[bool(f & TcpFlags.SYN) for f in flags],
            ack=[bool(f & TcpFlags.ACK) for f in flags],
            fin=[bool(f & TcpFlags.FIN) for f in flags],
            rst=[bool(f & TcpFlags.RST) for f in flags])

    def export_state(self) -> Dict:
        return self.table.export_state()

    def import_state(self, state: Dict) -> None:
        self.table.import_state(state)


class LfaDetectorBooster(Booster):
    """The always-on LFA detector (Figure 2a: detectors stay on)."""

    name = "lfa_detector"
    attack_types = (ATTACK_TYPE,)

    def __init__(self, fluid: Optional[FluidNetwork] = None,
                 high_util: float = 0.9, sustain_s: float = 0.1,
                 check_period_s: float = 0.02,
                 low_conn_rate_bps: float = 20e6,
                 min_connections: float = 8.0,
                 persist_s: float = 0.3,
                 clear_fraction: float = 0.1,
                 clear_sustain_s: float = 1.0,
                 scope: int = NETWORK_WIDE_SCOPE,
                 false_positive_rate: float = 0.0,
                 false_negative_rate: float = 0.0,
                 table_capacity: int = 4096):
        self.fluid = fluid
        self.high_util = high_util
        self.sustain_s = sustain_s
        self.check_period_s = check_period_s
        self.low_conn_rate_bps = low_conn_rate_bps
        self.min_connections = min_connections
        self.persist_s = persist_s
        self.clear_fraction = clear_fraction
        self.clear_sustain_s = clear_sustain_s
        self.scope = scope
        self.false_positive_rate = false_positive_rate
        self.false_negative_rate = false_negative_rate
        self.table_capacity = table_capacity
        self.detections: List[Detection] = []
        #: Set once this booster has an active mitigation it initiated:
        #: (initiating switch, attack rate at detection time).
        self._initiated: Optional[Tuple[str, float]] = None
        self._hot_since: Dict[Tuple[str, str], float] = {}
        self._calm_since: Optional[float] = None

    def always_on(self) -> bool:
        return True

    def modes(self) -> List:
        """The detector defines the composite mitigation mode it triggers:
        rerouting + policing + obfuscation together (Figure 2c)."""
        from ..core.modes import ModeSpec
        return [ModeSpec.of(MITIGATION_MODE, ATTACK_TYPE,
                            boosters_on=("reroute", "dropper",
                                         "obfuscation"))]

    # ------------------------------------------------------------------
    # Declarative face (Figure 1a)
    # ------------------------------------------------------------------
    def dataflow(self) -> DataflowGraph:
        graph = DataflowGraph(self.name)
        graph.add_ppm(parser_ppm(
            self.name, "parser",
            base=("src", "dst", "proto", "sport", "dport", "size_bytes",
                  "tcp_flags")))
        graph.add_ppm(flow_table_ppm(
            self.name, "flow_state", capacity=self.table_capacity,
            factory=self._make_program))
        graph.add_ppm(logic_ppm(
            self.name, "link_monitor", PpmRole.DETECTION,
            ResourceVector(stages=1, sram_mb=0.05, alus=2)))
        graph.add_ppm(logic_ppm(
            self.name, "classifier", PpmRole.DETECTION,
            ResourceVector(stages=1, sram_mb=0.02, alus=2)))
        graph.add_edge("parser", "flow_state", weight=13)   # 5-tuple bits
        graph.add_edge("flow_state", "classifier", weight=64)
        graph.add_edge("link_monitor", "classifier", weight=32)
        return graph

    def _make_program(self, switch: ProgrammableSwitch) -> LfaDetectorProgram:
        return LfaDetectorProgram(self.name, f"{self.name}.flow_state",
                                  capacity=self.table_capacity)

    # ------------------------------------------------------------------
    # Runtime face
    # ------------------------------------------------------------------
    def on_deployed(self, deployment) -> None:
        if self.fluid is None:
            return
        sim = deployment.topo.sim
        # The flow-state module may have been consolidated with another
        # booster's equivalent table; resolve through the merge mapping.
        node = deployment.merged.merged_name(f"{self.name}.flow_state")
        detector_switches = deployment.switches_hosting(node)
        for switch_name in detector_switches:
            sim.every(self.check_period_s, self._check, deployment,
                      switch_name, start=self.check_period_s)

    # The per-switch periodic detection check.
    def _check(self, deployment, switch_name: str) -> None:
        fluid = self.fluid
        topo = deployment.topo
        sim = topo.sim
        switch = topo.switch(switch_name)
        if switch.reconfiguring:
            return

        if self._initiated is not None:
            if self._initiated[0] == switch_name:
                self._check_subsided(deployment, switch_name)
            return

        switch_names = set(topo.switch_names)
        for neighbor in switch.neighbors:
            if neighbor not in switch_names:
                continue
            link_key = (switch_name, neighbor)
            util = topo.link(*link_key).utilization
            if util < self.high_util:
                self._hot_since.pop(link_key, None)
                continue
            first = self._hot_since.setdefault(link_key, sim.now)
            if sim.now - first < self.sustain_s:
                continue
            # Signal (a) confirmed; run signal (b) on the crossing flows.
            suspicious = self._classify(fluid, link_key, sim)
            if not suspicious:
                continue
            attack_rate = sum(f.rate_bps for f in suspicious)
            self.detections.append(Detection(
                time=sim.now, switch=switch_name, link=link_key,
                utilization=util, suspicious_flows=len(suspicious),
                attack_rate_bps=attack_rate))
            _C_DETECTIONS.labels(self.name).inc()
            _C_FLOWS_FLAGGED.inc(len(suspicious))
            if _TRACE.enabled:
                _TRACE.emit(
                    "detection", sim_time=sim.now, booster=self.name,
                    switch=switch_name, link=link_key,
                    utilization=round(util, 4),
                    suspicious_flows=len(suspicious),
                    attack_rate_bps=attack_rate)
            agent = deployment.agent(switch_name)
            if agent.initiate(ATTACK_TYPE, MITIGATION_MODE, scope=self.scope):
                self._initiated = (switch_name, attack_rate)
                self._calm_since = None
            return

    def _classify(self, fluid: FluidNetwork, link_key: Tuple[str, str],
                  sim) -> List:
        """Signal (b): persistent low-rate flows crossing the hot link."""
        suspicious = []
        rng = sim.rng
        for flow in fluid.flows.crossing_link(*link_key):
            if not flow.active(sim.now):
                continue
            per_conn = flow.rate_bps / flow.weight
            age = sim.now - flow.start_time
            # A Crossfire source-destination pair: *many* individually
            # legitimate connections, each low-rate and long-lived (the
            # per-flow TCP table exposes the connection count and rates).
            is_suspect = (per_conn < self.low_conn_rate_bps
                          and flow.weight >= self.min_connections
                          and age >= self.persist_s)
            # Imperfect detectors (the paper: "high false positive/
            # negative rates on such traffic patterns").
            if is_suspect and rng.random() < self.false_negative_rate:
                is_suspect = False
            elif not is_suspect and rng.random() < self.false_positive_rate:
                is_suspect = True
            if is_suspect:
                flow.suspicious = True
                flow.suspicion_score = max(
                    flow.suspicion_score,
                    min(1.0, 1.0 - per_conn / self.low_conn_rate_bps))
                suspicious.append(flow)
        return suspicious

    def _check_subsided(self, deployment, switch_name: str) -> None:
        """Revert to the default mode once the attack traffic is gone
        (Figure 2's step 6: 'as soon as attacks subside')."""
        sim = deployment.topo.sim
        if self._initiated is None:
            raise RuntimeError(
                "_check_subsided called before any mode initiation was "
                "recorded; detection must initiate a mode first")
        _, attack_rate_at_detection = self._initiated
        # Offered (pre-policing) demand: what the attacker still sends,
        # regardless of how much of it the dropper lets through.
        current = sum(
            f.demand_bps for f in self.fluid.flows
            if f.suspicious and f.active(sim.now))
        threshold = self.clear_fraction * max(attack_rate_at_detection, 1.0)
        if current > threshold:
            self._calm_since = None
            return
        if self._calm_since is None:
            self._calm_since = sim.now
            return
        if sim.now - self._calm_since < self.clear_sustain_s:
            return
        agent = deployment.agent(switch_name)
        if agent.initiate(ATTACK_TYPE, "default", scope=self.scope):
            _C_ALL_CLEAR.inc()
            if _TRACE.enabled:
                _TRACE.emit("all_clear", sim_time=sim.now,
                            booster=self.name, switch=switch_name)
            self._initiated = None
            self._calm_since = None
            self._hot_since.clear()
            for flow in self.fluid.flows:
                flow.suspicious = False
                flow.suspicion_score = 0.0
