"""Shared helpers for authoring boosters.

Boosters declare their PPMs through these builders so the analyzer sees
uniform semantic parameters: two boosters that both declare a
``sketch_ppm(width=1024, depth=4)`` — whatever they name it — get one
shared sketch installed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional

from ..dataplane.bloom import BloomFilter
from ..dataplane.flow_table import FlowTable
from ..dataplane.hashpipe import HashPipe
from ..dataplane.parser import HeaderParser
from ..dataplane.resources import ResourceVector
from ..dataplane.sketch import CountMinSketch
from ..core.ppm import PpmKind, PpmRole, PpmSpec


def parser_ppm(booster: str, name: str, base: Iterable[str] = (),
               custom: Iterable[str] = (),
               factory: Optional[Callable] = None) -> PpmSpec:
    parser = HeaderParser.of(f"{booster}.{name}", base, custom)
    return PpmSpec(
        name=name, kind=PpmKind.PARSER, role=PpmRole.SUPPORT,
        requirement=parser.resource_requirement(),
        params={"base_fields": tuple(sorted(parser.base_fields)),
                "custom_fields": tuple(sorted(parser.custom_fields))},
        factory=factory, booster=booster)


def sketch_ppm(booster: str, name: str, width: int = 1024, depth: int = 4,
               role: PpmRole = PpmRole.DETECTION,
               factory: Optional[Callable] = None, **impl: Any) -> PpmSpec:
    probe = CountMinSketch("sizing", width=width, depth=depth)
    params: Dict[str, Any] = {"width": width, "depth": depth}
    params.update({f"_{k}": v for k, v in impl.items()})
    return PpmSpec(name=name, kind=PpmKind.SKETCH, role=role,
                   requirement=probe.resource_requirement(),
                   params=params, factory=factory, booster=booster)


def bloom_ppm(booster: str, name: str, size_bits: int = 8192,
              n_hashes: int = 4, role: PpmRole = PpmRole.MITIGATION,
              factory: Optional[Callable] = None, **impl: Any) -> PpmSpec:
    probe = BloomFilter("sizing", size_bits=size_bits, n_hashes=n_hashes)
    params: Dict[str, Any] = {"size_bits": size_bits, "n_hashes": n_hashes}
    params.update({f"_{k}": v for k, v in impl.items()})
    return PpmSpec(name=name, kind=PpmKind.BLOOM, role=role,
                   requirement=probe.resource_requirement(),
                   params=params, factory=factory, booster=booster)


def hashpipe_ppm(booster: str, name: str, stages: int = 4,
                 slots_per_stage: int = 64,
                 role: PpmRole = PpmRole.DETECTION,
                 factory: Optional[Callable] = None, **impl: Any) -> PpmSpec:
    probe = HashPipe("sizing", stages=stages, slots_per_stage=slots_per_stage)
    params: Dict[str, Any] = {"stages": stages,
                              "slots_per_stage": slots_per_stage}
    params.update({f"_{k}": v for k, v in impl.items()})
    return PpmSpec(name=name, kind=PpmKind.HASHPIPE, role=role,
                   requirement=probe.resource_requirement(),
                   params=params, factory=factory, booster=booster)


def flow_table_ppm(booster: str, name: str, capacity: int = 4096,
                   key_fields: Iterable[str] = ("src", "dst", "proto",
                                                "sport", "dport"),
                   role: PpmRole = PpmRole.DETECTION,
                   factory: Optional[Callable] = None, **impl: Any) -> PpmSpec:
    probe = FlowTable("sizing", capacity=capacity)
    params: Dict[str, Any] = {"capacity": capacity,
                              "key_fields": tuple(sorted(key_fields))}
    params.update({f"_{k}": v for k, v in impl.items()})
    return PpmSpec(name=name, kind=PpmKind.FLOW_TABLE, role=role,
                   requirement=probe.resource_requirement(),
                   params=params, factory=factory, booster=booster)


def logic_ppm(booster: str, name: str, role: PpmRole,
              requirement: ResourceVector,
              logic_id: Optional[str] = None,
              factory: Optional[Callable] = None, **impl: Any) -> PpmSpec:
    """Custom match-action logic.  Provide ``logic_id`` only when two
    boosters intentionally share the same logic implementation."""
    params: Dict[str, Any] = {}
    if logic_id is not None:
        params["logic_id"] = logic_id
    params.update({f"_{k}": v for k, v in impl.items()})
    return PpmSpec(name=name, kind=PpmKind.LOGIC, role=role,
                   requirement=requirement, params=params,
                   factory=factory, booster=booster)
