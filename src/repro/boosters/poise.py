"""Context-aware enterprise access control booster (Poise-style, [56]).

Poise enforces BYOD access policies *from the network*, so a compromised
endpoint cannot bypass them: clients attach context (device posture,
user role, location) to their packets, and switches evaluate policies
against that context at line rate.  This is the paper's second
"in-network is indispensable" class — the network as the last line of
defense against compromised endpoints.

Policies are context predicates over packet header fields plus the
``context`` custom header, compiled into a priority-ordered match-action
table.  Enforcement is always on for protected destinations; a
``quarantine`` mode additionally rejects any packet *lacking* context
(used when an intrusion is suspected).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..core.booster import Booster, GatedProgram
from ..core.dataflow import DataflowGraph
from ..core.modes import ModeSpec
from ..core.ppm import PpmRole
from ..dataplane.pipeline import MatchActionTable, MatchKind
from ..dataplane.resources import ResourceVector
from ..netsim.packet import Packet, PacketKind
from ..netsim.switch import Drop, ProgrammableSwitch, ProgramResult

ATTACK_TYPE = "endpoint_compromise"
QUARANTINE_MODE = "quarantine"

#: Custom header carrying the endpoint's attested context.
CONTEXT_HEADER = "context"


def _allow_any_context(ctx: Dict[str, Any]) -> bool:
    """Default predicate: every context passes.  A module-level function
    (not a lambda) so policies stay picklable — AccessPolicy instances
    are reachable from engine checkpoints (reprolint RPL010)."""
    return True


@dataclass(frozen=True)
class AccessPolicy:
    """One context-aware rule: predicate -> allow/deny."""

    name: str
    #: Destinations the rule protects; empty means every destination.
    protected_dsts: frozenset = frozenset()
    #: Predicate over the packet's context dict (missing context -> {}).
    predicate: Callable[[Dict[str, Any]], bool] = _allow_any_context
    allow: bool = True
    priority: int = 0

    @classmethod
    def require(cls, name: str, dsts: List[str],
                **required_context: Any) -> "AccessPolicy":
        """Allow only packets whose context carries the given values."""
        required = dict(required_context)

        def predicate(ctx: Dict[str, Any]) -> bool:
            return all(ctx.get(key) == value
                       for key, value in required.items())

        return cls(name=name, protected_dsts=frozenset(dsts),
                   predicate=predicate, allow=True, priority=10)

    @classmethod
    def deny_all(cls, name: str, dsts: List[str]) -> "AccessPolicy":
        """The default-deny backstop for protected destinations."""
        return cls(name=name, protected_dsts=frozenset(dsts),
                   predicate=_allow_any_context, allow=False, priority=0)


class PoiseProgram(GatedProgram):
    """Per-switch policy enforcement point."""

    def __init__(self, booster: "PoiseBooster", name: str):
        table = MatchActionTable(f"{name}.policies",
                                 match_kind=MatchKind.TERNARY,
                                 max_entries=256, entry_bytes=32)
        super().__init__(booster.name, name,
                         ResourceVector(stages=2, sram_mb=0.1,
                                        tcam_kb=table.memory_requirement()
                                        .tcam_kb, alus=2))
        self.booster = booster
        self.packets_denied = 0
        self.packets_quarantined = 0

    def process(self, switch: ProgrammableSwitch,
                packet: Packet) -> ProgramResult:
        if packet.kind != PacketKind.DATA:
            return None
        policies = self.booster.policies_for(packet.dst)
        if not policies:
            return None
        context = packet.headers.get(CONTEXT_HEADER)
        quarantining = self.enabled_on(switch)  # mode gate = quarantine
        if context is None:
            if quarantining:
                self.packets_quarantined += 1
                return Drop("poise_no_context")
            context = {}
        verdict = self.booster.evaluate(packet.dst, context)
        if not verdict:
            self.packets_denied += 1
            return Drop("poise_policy_denied")
        return None

    def export_state(self) -> Dict:
        return {"packets_denied": self.packets_denied,
                "packets_quarantined": self.packets_quarantined}

    def import_state(self, state: Dict) -> None:
        self.packets_denied = state.get("packets_denied", 0)
        self.packets_quarantined = state.get("packets_quarantined", 0)


class PoiseBooster(Booster):
    """Context-aware access control as a FastFlex booster."""

    name = "poise"
    attack_types = (ATTACK_TYPE,)

    def __init__(self, policies: Optional[List[AccessPolicy]] = None):
        self.policies: List[AccessPolicy] = list(policies or [])
        self.programs: Dict[str, PoiseProgram] = {}

    # ------------------------------------------------------------------
    # Policy management (the "control plane" of the booster)
    # ------------------------------------------------------------------
    def add_policy(self, policy: AccessPolicy) -> AccessPolicy:
        self.policies.append(policy)
        return policy

    def policies_for(self, dst: str) -> List[AccessPolicy]:
        return [p for p in self.policies
                if not p.protected_dsts or dst in p.protected_dsts]

    def evaluate(self, dst: str, context: Dict[str, Any]) -> bool:
        """Highest-priority matching rule wins; default allow when no
        rule protects the destination."""
        applicable = self.policies_for(dst)
        if not applicable:
            return True
        matching = [p for p in applicable if p.predicate(context)]
        if not matching:
            return False  # protected destination, nothing granted access
        best = max(matching, key=lambda p: p.priority)
        return best.allow

    # ------------------------------------------------------------------
    def always_on(self) -> bool:
        # Base enforcement runs unconditionally (``process`` is not mode
        # gated); the gate — ``enabled_on`` — means the *quarantine*
        # mode specifically, so the booster must not be always-on.
        return False

    def modes(self) -> List[ModeSpec]:
        return [ModeSpec.of(QUARANTINE_MODE, ATTACK_TYPE,
                            boosters_on=(self.name,))]

    def dataflow(self) -> DataflowGraph:
        graph = DataflowGraph(self.name)
        from .base import logic_ppm, parser_ppm
        graph.add_ppm(parser_ppm(
            self.name, "parser",
            base=("src", "dst", "proto", "dport"),
            custom=(CONTEXT_HEADER,)))
        graph.add_ppm(logic_ppm(
            self.name, "policy_table", PpmRole.DETECTION,
            ResourceVector(stages=2, sram_mb=0.1, tcam_kb=8, alus=2),
            factory=self._make_program))
        graph.add_ppm(logic_ppm(
            self.name, "verdict", PpmRole.MITIGATION,
            ResourceVector(stages=1, sram_mb=0.02, alus=1)))
        graph.add_edge("parser", "policy_table", weight=32)
        graph.add_edge("policy_table", "verdict", weight=2)
        return graph

    def _make_program(self, switch: ProgrammableSwitch) -> PoiseProgram:
        program = PoiseProgram(self, f"{self.name}.policy_table")
        self.programs[switch.name] = program
        return program
