"""Packet-dropping defense booster (§4.1) and the "illusion of success".

Rate-limits or drops traffic of *highly* suspicious flows.  Because
dropping legitimate traffic is collateral damage, the booster only acts
above a suspicion-score threshold (the paper: "such a defense should be
applied only to highly suspicious flows"), and by default it *rate
limits to a trickle* instead of blackholing — from the attacker's side
this looks like the attack succeeding (step 5 of the FastFlex defense:
the "illusion of success"), removing the incentive to roll.

Packet path: a bloom-filter blocklist dropping matching flows' packets.
Fluid path: policing the flow's rate to ``keep_fraction`` of its demand.
"""

from __future__ import annotations

from itertools import compress
from typing import Dict, Optional

from ..core.booster import Booster, GatedProgram
from ..core.dataflow import DataflowGraph
from ..core.ppm import PpmRole
from ..dataplane.bloom import BloomFilter
from ..dataplane.resources import ResourceVector
from ..netsim.fluid import FluidNetwork
from ..netsim.packet import Packet, PacketKind
from ..netsim.switch import Drop, ProgrammableSwitch, ProgramResult
from ..telemetry import metrics, trace
from .base import bloom_ppm, logic_ppm, parser_ppm
from .lfa_detector import ATTACK_TYPE, MITIGATION_MODE

_MET = metrics()
_TRACE = trace()
_C_FLOWS_POLICED = _MET.counter(
    "booster_flows_policed_total",
    "flows rate-limited to a trickle by the dropper")
_C_PACKETS_DROPPED = _MET.counter(
    "booster_packets_dropped_total",
    "packets dropped by the blocklist on the packet path")


class PacketDropperProgram(GatedProgram):
    """Per-switch blocklist: drops DATA packets of blocklisted flows."""

    def __init__(self, booster_name: str, name: str,
                 size_bits: int = 8192, n_hashes: int = 4):
        blocklist = BloomFilter(f"{name}.blocklist", size_bits=size_bits,
                                n_hashes=n_hashes)
        super().__init__(booster_name, name,
                         blocklist.resource_requirement())
        self.blocklist = blocklist
        self.packets_dropped = 0
        # 5-tuple -> membership verdict, valid for one blocklist
        # generation (bloom answers only change when its bits do).
        self._probe_cache: Dict[tuple, bool] = {}
        self._probe_mutations = -1

    supports_batch = True

    #: The probe memo is cleared past this many entries so an adversarial
    #: flow stream cannot grow it without bound.
    _PROBE_CACHE_MAX = 1 << 16

    def block(self, flow_key) -> None:
        self.blocklist.add(flow_key)

    def process_enabled(self, switch: ProgrammableSwitch,
                        packet: Packet) -> ProgramResult:
        if packet.kind != PacketKind.DATA:
            return None
        if packet.flow_key in self.blocklist:
            self.packets_dropped += 1
            _C_PACKETS_DROPPED.inc()
            return Drop("suspicious_flow")
        return None

    def process_batch_enabled(self, switch: ProgrammableSwitch,
                              batch) -> None:
        """Pre-filter stage: bloom membership is probed once per unique
        flow (the batch's flow-key column shares one :class:`FlowKey`
        per unique 5-tuple, so hashes are computed once and cached),
        and the per-index scan runs only for windows that actually
        contain blocklisted flows."""
        mask = batch.data_mask()
        keys = batch.flow_keys
        if batch.all_data:
            uniq = batch.unique_flow_keys()
        else:
            uniq = set(compress(keys, mask))
        if not uniq:
            return
        blocklist = self.blocklist
        cache = self._probe_cache
        if blocklist.mutations != self._probe_mutations \
                or len(cache) > self._PROBE_CACHE_MAX:
            cache.clear()
            self._probe_mutations = blocklist.mutations
        cache_get = cache.get
        blocked = set()
        for key in uniq:
            verdict = cache_get(key)
            if verdict is None:
                verdict = cache[key] = key in blocklist
            if verdict:
                blocked.add(key)
        if not blocked:
            return
        # The flow-key column shares one object per unique flow, so the
        # per-index scan can match on C-hashable id() tokens instead of
        # re-invoking FlowKey.__hash__ per packet.
        blocked_ids = set(map(id, blocked))
        if batch.all_data:
            hits = [i for i, t in enumerate(map(id, keys))
                    if t in blocked_ids]
        else:
            hits = [i for i, t in enumerate(map(id, keys))
                    if mask[i] and t in blocked_ids]
        self.packets_dropped += len(hits)
        _C_PACKETS_DROPPED.inc(len(hits))
        for i in hits:
            batch.drop(i, "suspicious_flow")

    def export_state(self) -> Dict:
        return self.blocklist.export_state()

    def import_state(self, state: Dict) -> None:
        self.blocklist.import_state(state)


class PacketDropperBooster(Booster):
    """The mitigation-mode rate limiter / dropper."""

    name = "dropper"
    attack_types = (ATTACK_TYPE,)

    def __init__(self, fluid: Optional[FluidNetwork] = None,
                 drop_score_threshold: float = 0.5,
                 keep_fraction: float = 0.1,
                 check_period_s: float = 0.05,
                 bloom_bits: int = 8192):
        if not 0 <= keep_fraction <= 1:
            raise ValueError("keep_fraction must be in [0, 1]")
        self.fluid = fluid
        self.drop_score_threshold = drop_score_threshold
        self.keep_fraction = keep_fraction
        self.check_period_s = check_period_s
        self.bloom_bits = bloom_bits
        self.programs: Dict[str, PacketDropperProgram] = {}
        self.flows_policed = 0
        self._policed: Dict[int, object] = {}

    # ------------------------------------------------------------------
    def dataflow(self) -> DataflowGraph:
        graph = DataflowGraph(self.name)
        graph.add_ppm(parser_ppm(
            self.name, "parser",
            base=("src", "dst", "proto", "sport", "dport")))
        graph.add_ppm(bloom_ppm(
            self.name, "blocklist", size_bits=self.bloom_bits,
            factory=self._make_program))
        graph.add_ppm(logic_ppm(
            self.name, "policer", PpmRole.MITIGATION,
            ResourceVector(stages=1, sram_mb=0.05, alus=2)))
        graph.add_edge("parser", "blocklist", weight=13)
        graph.add_edge("blocklist", "policer", weight=1)
        return graph

    def _make_program(self, switch: ProgrammableSwitch) -> PacketDropperProgram:
        program = PacketDropperProgram(self.name, f"{self.name}.blocklist",
                                       size_bits=self.bloom_bits)
        self.programs[switch.name] = program
        return program

    # ------------------------------------------------------------------
    def on_deployed(self, deployment) -> None:
        if self.fluid is None:
            return
        deployment.topo.sim.every(self.check_period_s, self._police,
                                  deployment, start=self.check_period_s)

    def _active(self, deployment) -> bool:
        return bool(deployment.bus.switches_in_mode(ATTACK_TYPE,
                                                    MITIGATION_MODE))

    def _police(self, deployment) -> None:
        if not self._active(deployment):
            if self._policed:
                self._unpolice_all()
            return
        now = deployment.topo.sim.now
        for flow in self.fluid.flows:
            if not flow.active(now) or flow.flow_id in self._policed:
                continue
            if (flow.suspicious
                    and flow.suspicion_score >= self.drop_score_threshold):
                flow.police_rate_bps = self.keep_fraction * flow.demand_bps
                self._policed[flow.flow_id] = flow
                self.flows_policed += 1
                _C_FLOWS_POLICED.inc()
                if _TRACE.enabled:
                    _TRACE.emit(
                        "mitigation", sim_time=now, booster=self.name,
                        action="police", flow_id=flow.flow_id,
                        suspicion_score=round(flow.suspicion_score, 4),
                        police_rate_bps=flow.police_rate_bps)
                for program in self.programs.values():
                    program.block(flow.key)

    def _unpolice_all(self) -> None:
        """Mode is over: lift policing (blooms stay until reset — a bloom
        filter cannot delete; a real deployment swaps in a fresh one)."""
        for flow in self._policed.values():
            flow.police_rate_bps = None
        self._policed.clear()
        for program in self.programs.values():
            program.blocklist.clear()
