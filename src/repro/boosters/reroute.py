"""Congestion-aware rerouting booster, entirely in data plane (§4.1).

A Hula-style distance-vector over utilization probes [46]: switches near
the protected destinations periodically originate PROBE packets; each
switch that receives a probe learns "via this neighbor, the worst link
utilization toward the origin is U", keeps the best next hop per origin,
and re-floods improved probes.  Forwarding decisions come entirely from
these tables — no controller round trip — which is what lets FastFlex
disperse a rolling attack "almost instantaneously".

Per the paper's step (3), only *suspicious* flows are steered onto the
probe-discovered detours; normal flows stay pinned to their optimal TE
paths (``pin_normal=False`` reproduces the naive reroute-everything
variant for the selective-reroute ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.booster import Booster, GatedProgram
from ..core.dataflow import DataflowGraph
from ..core.ppm import PpmRole
from ..dataplane.resources import ResourceVector
from ..netsim.fluid import FluidNetwork
from ..netsim.packet import Packet, PacketKind, Protocol
from ..netsim.routing import Path, install_flow_route
from ..netsim.switch import Consume, ProgrammableSwitch, ProgramResult
from ..telemetry import metrics, trace
from .base import logic_ppm, parser_ppm
from .lfa_detector import ATTACK_TYPE, MITIGATION_MODE

_MET = metrics()
_TRACE = trace()
_C_REROUTES = _MET.counter(
    "booster_reroutes_applied_total",
    "flow steerings onto probe-discovered detours")
_C_PATHS_RESTORED = _MET.counter(
    "booster_paths_restored_total",
    "steered flows returned to their original TE paths")


@dataclass
class BestPathEntry:
    """Per-origin routing state a switch learns from probes."""

    utilization: float
    next_hop: str
    updated_at: float
    hops: int


class HulaProbeProgram(GatedProgram):
    """Per-switch probe engine: consumes probes, keeps best next hops."""

    def __init__(self, booster_name: str, name: str,
                 entry_ttl_s: float = 0.5, hysteresis: float = 0.02):
        super().__init__(booster_name, name,
                         ResourceVector(stages=2, sram_mb=0.1, alus=4))
        self.entry_ttl_s = entry_ttl_s
        self.hysteresis = hysteresis
        self.best: Dict[str, BestPathEntry] = {}
        self.probes_processed = 0

    # ------------------------------------------------------------------
    def process_enabled(self, switch: ProgrammableSwitch,
                        packet: Packet) -> ProgramResult:
        if packet.kind != PacketKind.PROBE:
            return None
        headers = packet.headers
        origin = headers["origin"]
        self.probes_processed += 1
        if origin == switch.name:
            return Consume()
        sender = headers["sender"]
        walked = headers["path"]
        if switch.name in walked:
            return Consume()  # probe loop; kill it

        # The probe came *from* ``sender``; data toward the origin would
        # leave over our link *to* it.
        link = switch.links.get(sender)
        if link is None:
            return Consume()
        candidate = max(headers["max_util"], link.utilization)

        now = switch.sim.now
        entry = self.best.get(origin)
        should_update = (
            entry is None
            or now - entry.updated_at > self.entry_ttl_s
            or entry.next_hop == sender  # refresh from current best path
            or candidate < entry.utilization - self.hysteresis)
        if should_update:
            self.best[origin] = BestPathEntry(
                utilization=candidate, next_hop=sender,
                updated_at=now, hops=len(walked))
            scope = headers.get("scope", 0)
            if scope > 0:
                self._reflood(switch, origin, candidate,
                              walked + [switch.name], scope - 1, skip=sender)
        return Consume()

    def _reflood(self, switch: ProgrammableSwitch, origin: str,
                 max_util: float, walked: List[str], scope: int,
                 skip: str) -> None:
        for neighbor, link in switch.links.items():
            if neighbor == skip or neighbor in walked:
                continue
            if not isinstance(link.dst, ProgrammableSwitch):
                continue
            probe = Packet(
                src=switch.name, dst=neighbor, size_bytes=64,
                kind=PacketKind.PROBE, proto=Protocol.UDP,
                headers={"origin": origin, "sender": switch.name,
                         "max_util": max_util, "path": list(walked),
                         "scope": scope})
            probe.created_at = switch.sim.now
            link.send(probe)

    # ------------------------------------------------------------------
    def next_hop_toward(self, origin: str,
                        now: float) -> Optional[BestPathEntry]:
        entry = self.best.get(origin)
        if entry is None or now - entry.updated_at > self.entry_ttl_s:
            return None
        return entry

    def export_state(self) -> Dict:
        return {"best": {origin: (e.utilization, e.next_hop, e.updated_at,
                                  e.hops)
                         for origin, e in self.best.items()}}

    def import_state(self, state: Dict) -> None:
        for origin, (util, nxt, at, hops) in state.get("best", {}).items():
            self.best[origin] = BestPathEntry(util, nxt, at, hops)


class CongestionRerouteBooster(Booster):
    """The rerouting defense: probes plus the flow-steering runtime."""

    name = "reroute"
    attack_types = (ATTACK_TYPE,)

    def __init__(self, fluid: Optional[FluidNetwork] = None,
                 protected_gateways: Optional[List[str]] = None,
                 probe_period_s: float = 0.05,
                 probe_scope: int = 8,
                 reroute_period_s: float = 0.05,
                 entry_ttl_s: float = 0.5,
                 pin_normal: bool = True,
                 improvement_margin: float = 0.15,
                 re_steer_threshold: float = 0.95):
        self.fluid = fluid
        #: Switches that originate probes — the gateways of protected
        #: destination prefixes (e.g. ``sR`` in the Figure 2 network).
        self.protected_gateways = list(protected_gateways or [])
        self.probe_period_s = probe_period_s
        self.probe_scope = probe_scope
        self.reroute_period_s = reroute_period_s
        self.entry_ttl_s = entry_ttl_s
        self.pin_normal = pin_normal
        #: A steered flow only moves again if its current path's worst
        #: utilization reaches ``re_steer_threshold`` and the candidate
        #: beats it by ``improvement_margin`` — Hula-style stickiness
        #: that prevents the herd from oscillating between two equally
        #: attractive detours.
        self.improvement_margin = improvement_margin
        self.re_steer_threshold = re_steer_threshold
        self.programs: Dict[str, HulaProbeProgram] = {}
        self.reroutes_applied = 0
        self._original_paths: Dict[int, Path] = {}
        self._deployment = None

    # ------------------------------------------------------------------
    def dataflow(self) -> DataflowGraph:
        graph = DataflowGraph(self.name)
        graph.add_ppm(parser_ppm(
            self.name, "parser",
            base=("src", "dst", "proto", "sport", "dport"),
            custom=("origin", "max_util", "path")))
        graph.add_ppm(logic_ppm(
            self.name, "probe_engine", PpmRole.MITIGATION,
            ResourceVector(stages=2, sram_mb=0.1, alus=4),
            factory=self._make_program))
        graph.add_ppm(logic_ppm(
            self.name, "path_table", PpmRole.MITIGATION,
            ResourceVector(stages=1, sram_mb=0.2, alus=2)))
        graph.add_edge("parser", "probe_engine", weight=48)
        graph.add_edge("probe_engine", "path_table", weight=16)
        return graph

    def _make_program(self, switch: ProgrammableSwitch) -> HulaProbeProgram:
        program = HulaProbeProgram(self.name, f"{self.name}.probe_engine",
                                   entry_ttl_s=self.entry_ttl_s)
        self.programs[switch.name] = program
        return program

    # ------------------------------------------------------------------
    def on_deployed(self, deployment) -> None:
        self._deployment = deployment
        sim = deployment.topo.sim
        for gateway in self.protected_gateways:
            sim.every(self.probe_period_s, self._originate_probes,
                      deployment, gateway, start=self.probe_period_s)
        if self.fluid is not None:
            sim.every(self.reroute_period_s, self._steer_flows, deployment,
                      start=self.reroute_period_s)

    def _active(self, deployment) -> bool:
        in_mode = deployment.bus.switches_in_mode(ATTACK_TYPE,
                                                  MITIGATION_MODE)
        return bool(in_mode)

    def _originate_probes(self, deployment, gateway: str) -> None:
        """The protected gateway floods fresh probes while mitigating."""
        if not self._active(deployment):
            return
        switch = deployment.topo.switch(gateway)
        if switch.reconfiguring:
            return
        for neighbor, link in switch.links.items():
            if not isinstance(link.dst, ProgrammableSwitch):
                continue
            probe = Packet(
                src=gateway, dst=neighbor, size_bytes=64,
                kind=PacketKind.PROBE, proto=Protocol.UDP,
                headers={"origin": gateway, "sender": gateway,
                         "max_util": 0.0, "path": [gateway],
                         "scope": self.probe_scope})
            probe.created_at = switch.sim.now
            link.send(probe)

    # ------------------------------------------------------------------
    # Flow steering (the fluid-model face of hop-by-hop forwarding)
    # ------------------------------------------------------------------
    def _steer_flows(self, deployment) -> None:
        if not self._active(deployment):
            if self._original_paths:
                self._restore_paths(deployment)
            return
        now = deployment.topo.sim.now
        for flow in self.fluid.flows:
            if not flow.active(now):
                continue
            if flow.suspicious or not self.pin_normal:
                self._steer_one(deployment, flow, now)

    def _steer_one(self, deployment, flow, now: float) -> None:
        topo = deployment.topo
        dst_host = topo.host(flow.dst)
        origin = dst_host.gateway
        if origin not in self.protected_gateways:
            return
        src_host = topo.host(flow.src)
        new_path = self._walk(topo, src_host.gateway, origin, now)
        if new_path is None:
            return
        nodes = [flow.src] + new_path + [flow.dst]
        if flow.path is not None and tuple(nodes) == flow.path.nodes:
            return
        already_steered = flow.flow_id in self._original_paths
        if already_steered and flow.path is not None:
            # Stickiness: once on a detour, a flow only moves again when
            # its current path is itself congested AND the candidate is
            # clearly better.  Continuously chasing the emptiest path
            # would make the whole steered herd oscillate between
            # equally attractive detours.
            current_util = max(topo.link(a, b).utilization
                               for a, b in flow.path.link_keys)
            if current_util < self.re_steer_threshold:
                return
            candidate_util = max(topo.link(a, b).utilization
                                 for a, b in zip(nodes, nodes[1:]))
            if candidate_util > current_util - self.improvement_margin:
                return
        if not already_steered and flow.path is not None:
            self._original_paths[flow.flow_id] = flow.path
        new = Path.of(nodes)
        flow.set_path(new)
        # Mirror the steering into per-pair forwarding state so packet
        # traffic of this pair (including traceroutes) follows the detour.
        install_flow_route(topo, new)
        self.reroutes_applied += 1
        _C_REROUTES.inc()
        if _TRACE.enabled:
            _TRACE.emit("mitigation", sim_time=now, booster=self.name,
                        action="reroute", flow_id=flow.flow_id,
                        suspicious=flow.suspicious,
                        path=list(new.nodes))

    def _walk(self, topo, start: str, origin: str,
              now: float) -> Optional[List[str]]:
        """Follow the distributed next-hop tables from ``start`` to the
        probe origin — what hop-by-hop forwarding would do."""
        path = [start]
        current = start
        # switch_names sorts on every access; hoist the hop budget.
        max_hops = len(topo.switch_names) + 1
        while current != origin:
            program = self.programs.get(current)
            if program is None:
                return None
            entry = program.next_hop_toward(origin, now)
            if entry is None or entry.next_hop in path:
                return None
            path.append(entry.next_hop)
            current = entry.next_hop
            if len(path) > max_hops:
                return None
        return path

    def _restore_paths(self, deployment) -> None:
        """Mode is back to default: return every steered flow to its
        original TE path."""
        for flow in self.fluid.flows:
            original = self._original_paths.pop(flow.flow_id, None)
            if original is not None:
                flow.set_path(original)
                install_flow_route(deployment.topo, original)
                _C_PATHS_RESTORED.inc()
        self._original_paths.clear()
