"""Hop-count filtering booster (NetHCF-style, [51]).

Spoofed-source traffic usually arrives with a TTL inconsistent with the
real host's distance.  The booster learns, per source, the hop count
implied by observed TTLs (initial TTL inferred as the next canonical
value above the observed one), then — in filtering mode — drops packets
whose hop count deviates from the learned value.

Modes: ``learning`` is the always-on default behaviour; the ``hcf_filter``
mode turns on enforcement.
"""

from __future__ import annotations

from collections import Counter
from itertools import compress
from typing import Dict, List

from ..core.booster import Booster, GatedProgram
from ..core.dataflow import DataflowGraph
from ..core.modes import ModeSpec
from ..core.ppm import PpmRole
from ..dataplane.resources import ResourceVector
from ..netsim.packet import Packet, PacketKind
from ..netsim.switch import Drop, ProgrammableSwitch, ProgramResult
from .base import logic_ppm, parser_ppm

ATTACK_TYPE = "spoofing"
FILTER_MODE = "hcf_filter"

#: Canonical initial TTLs of common stacks.
INITIAL_TTLS = (32, 64, 128, 255)


def infer_hop_count(observed_ttl: int) -> int:
    """Hops traveled = inferred initial TTL minus the observed TTL."""
    if observed_ttl < 0:
        raise ValueError(f"TTL cannot be negative, got {observed_ttl}")
    for initial in INITIAL_TTLS:
        if observed_ttl <= initial:
            return initial - observed_ttl
    return 255 - observed_ttl


class HopCountFilterProgram(GatedProgram):
    """Per-switch hop-count table: learn always, enforce when gated on.

    The learning half is deliberately *not* mode-gated (``booster_name``
    gating applies only to enforcement) — NetHCF keeps learning so the
    table is warm when filtering engages.
    """

    supports_batch = True

    def __init__(self, booster: "HopCountFilterBooster", name: str,
                 tolerance: int = 0):
        super().__init__(f"{booster.name}.filter", name,
                         ResourceVector(stages=2, sram_mb=0.5, alus=2))
        self.booster = booster
        self.tolerance = tolerance
        self.learned: Dict[str, int] = {}
        self.packets_dropped = 0
        self.mismatches = 0

    def process(self, switch: ProgrammableSwitch,
                packet: Packet) -> ProgramResult:
        if packet.kind != PacketKind.DATA:
            return None
        hops = infer_hop_count(packet.ttl)
        known = self.learned.get(packet.src)
        enforcing = self.enabled_on(switch)
        if known is None:
            if not enforcing:
                # Learning phase: trust and record first sight.
                self.learned[packet.src] = hops
            else:
                # Unknown source while filtering: conservative accept,
                # but learn it so repeats are checked.
                self.learned[packet.src] = hops
            return None
        if abs(hops - known) <= self.tolerance:
            return None
        self.mismatches += 1
        if enforcing:
            self.packets_dropped += 1
            return Drop("hop_count_mismatch")
        # Learning mode tracks mismatches but lets traffic through.
        return None

    def process_batch(self, switch: ProgrammableSwitch, batch) -> None:
        """Batch twin of :meth:`process` (learning is ungated, so this
        overrides ``process_batch`` rather than the gated hook).

        The sequential semantics aggregate cleanly because the learned
        hop count for a source is fixed by its *first* sighting and
        never updated afterwards: within one window only the first
        (src, ttl) occurrence of an unknown source can learn, its own
        pair then trivially matches, and every other pair's verdict is
        independent of arrival order.  So the kernel folds the window to
        unique (src, ttl) pairs with C-level dict/Counter machinery and
        only walks per-packet indices when enforcement actually has
        mismatches to drop."""
        mask = batch.data_mask()
        src = batch.src
        ttl = batch.column("ttl")
        if batch.all_data:
            pairs = list(zip(src, ttl))
        else:
            pairs = list(compress(zip(src, ttl), mask))
        if not pairs:
            return
        learned = self.learned
        tolerance = self.tolerance
        # dict(pairs) keeps sources in first-occurrence order (insertion
        # order survives reassignment).  Learning in first-sight order
        # keeps export_state insertion order byte-identical to the
        # sequential replay; the first-TTL pass (dict(reversed(pairs)):
        # last write in reversed iteration is the forward-order first)
        # only runs when the window actually contains unknown sources.
        unknown = [source for source in dict(pairs)
                   if source not in learned]
        if unknown:
            first_ttl = dict(reversed(pairs))
            for source in unknown:
                learned[source] = infer_hop_count(first_ttl[source])
        mismatched = set()
        for pair in dict.fromkeys(pairs):
            if abs(infer_hop_count(pair[1]) - learned[pair[0]]) > tolerance:
                mismatched.add(pair)
        if not mismatched:
            return
        mismatch_count = sum(
            mult for pair, mult in Counter(pairs).items()
            if pair in mismatched)
        self.mismatches += mismatch_count
        if not self.enabled_on(switch):
            # Learning mode tracks mismatches but lets traffic through.
            return
        if batch.all_data:
            hits = [i for i, pair in enumerate(zip(src, ttl))
                    if pair in mismatched]
        else:
            hits = [i for i, pair in enumerate(zip(src, ttl))
                    if mask[i] and pair in mismatched]
        self.packets_dropped += len(hits)
        for i in hits:
            batch.drop(i, "hop_count_mismatch")

    def export_state(self) -> Dict:
        return {"learned": dict(self.learned)}

    def import_state(self, state: Dict) -> None:
        self.learned.update(state.get("learned", {}))


class HopCountFilterBooster(Booster):
    """NetHCF as a FastFlex booster."""

    name = "hop_count"
    attack_types = (ATTACK_TYPE,)

    def __init__(self, tolerance: int = 0):
        self.tolerance = tolerance
        self.programs: Dict[str, HopCountFilterProgram] = {}

    def always_on(self) -> bool:
        return False  # enforcement is gated; learning happens regardless

    def modes(self) -> List[ModeSpec]:
        return [ModeSpec.of(FILTER_MODE, ATTACK_TYPE,
                            boosters_on=(f"{self.name}.filter",))]

    def dataflow(self) -> DataflowGraph:
        graph = DataflowGraph(self.name)
        graph.add_ppm(parser_ppm(
            self.name, "parser", base=("src", "dst", "ttl")))
        graph.add_ppm(logic_ppm(
            self.name, "hc_table", PpmRole.DETECTION,
            ResourceVector(stages=2, sram_mb=0.5, alus=2),
            factory=self._make_program))
        graph.add_ppm(logic_ppm(
            self.name, "enforcer", PpmRole.MITIGATION,
            ResourceVector(stages=1, sram_mb=0.02, alus=1)))
        graph.add_edge("parser", "hc_table", weight=16)
        graph.add_edge("hc_table", "enforcer", weight=8)
        return graph

    def _make_program(self, switch: ProgrammableSwitch) -> HopCountFilterProgram:
        program = HopCountFilterProgram(self, f"{self.name}.hc_table",
                                        tolerance=self.tolerance)
        self.programs[switch.name] = program
        return program
