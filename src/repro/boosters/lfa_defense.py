"""The composed FastFlex LFA defense (§4.2).

Wires the four building-block boosters — LFA detection, congestion-aware
rerouting, packet dropping, and topology obfuscation — into the single
multimode defense of Figure 2, on any topology.  This is the programmatic
face of the paper's case study; the Figure 3 experiment and the
quickstart example both build on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.controller import Deployment, FastFlexController
from ..netsim.fluid import FluidNetwork
from ..netsim.flows import FlowSet
from ..netsim.topology import FigureTwoNetwork, Topology
from .lfa_detector import ATTACK_TYPE, MITIGATION_MODE, LfaDetectorBooster
from .obfuscation import TopologyObfuscationBooster
from .packet_dropper import PacketDropperBooster
from .reroute import CongestionRerouteBooster


@dataclass
class LfaDefense:
    """The assembled defense: boosters plus their controller/deployment."""

    detector: LfaDetectorBooster
    reroute: CongestionRerouteBooster
    dropper: PacketDropperBooster
    obfuscation: TopologyObfuscationBooster
    controller: FastFlexController
    deployment: Optional[Deployment] = None

    def setup(self, flows: FlowSet) -> Deployment:
        """Run the controller's Figure 1 pipeline and install everything."""
        self.deployment = self.controller.setup(flows)
        return self.deployment

    @property
    def boosters(self) -> List:
        return [self.detector, self.reroute, self.dropper, self.obfuscation]

    def mitigation_active(self) -> bool:
        if self.deployment is None:
            return False
        return bool(self.deployment.bus.switches_in_mode(
            ATTACK_TYPE, MITIGATION_MODE))


def build_lfa_defense(topo: Topology, fluid: FluidNetwork,
                      protected_gateways: List[str],
                      detector: Optional[LfaDetectorBooster] = None,
                      reroute: Optional[CongestionRerouteBooster] = None,
                      dropper: Optional[PacketDropperBooster] = None,
                      obfuscation: Optional[TopologyObfuscationBooster] = None,
                      pervasive_detection: bool = True,
                      te_candidates: int = 4,
                      stability_guard_factory=None) -> LfaDefense:
    """Assemble the four-booster LFA defense on ``topo``.

    Pass pre-configured booster instances to override any default; the
    ablation benches use this to disable selective rerouting, drop the
    obfuscator, etc.
    """
    detector = detector if detector is not None else \
        LfaDetectorBooster(fluid=fluid)
    reroute = reroute if reroute is not None else \
        CongestionRerouteBooster(fluid=fluid,
                                 protected_gateways=protected_gateways)
    dropper = dropper if dropper is not None else \
        PacketDropperBooster(fluid=fluid)
    obfuscation = obfuscation if obfuscation is not None else \
        TopologyObfuscationBooster(fluid=fluid)
    if detector.fluid is None:
        detector.fluid = fluid
    if reroute.fluid is None:
        reroute.fluid = fluid
    if not reroute.protected_gateways:
        reroute.protected_gateways = list(protected_gateways)
    if dropper.fluid is None:
        dropper.fluid = fluid
    if obfuscation.fluid is None:
        obfuscation.fluid = fluid

    controller = FastFlexController(
        topo, [detector, reroute, dropper, obfuscation],
        pervasive_detection=pervasive_detection,
        te_candidates=te_candidates,
        stability_guard_factory=stability_guard_factory)
    return LfaDefense(detector=detector, reroute=reroute, dropper=dropper,
                      obfuscation=obfuscation, controller=controller)


def build_figure2_defense(net: FigureTwoNetwork, fluid: FluidNetwork,
                          **overrides) -> LfaDefense:
    """The defense on the paper's Figure 2 network: the protected
    gateway is the victim-side edge switch."""
    return build_lfa_defense(net.topo, fluid,
                             protected_gateways=[net.right_edge],
                             **overrides)
