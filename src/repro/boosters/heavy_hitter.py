"""Heavy-hitter / volumetric DDoS booster (HashPipe-based, [69, 70]).

Detects sources (or flows) whose byte counts dominate, entirely in the
data plane, and — in its mitigation mode — rate-limits them.  With a
:class:`~repro.core.sync.DetectorSyncAgent` attached, the detection
becomes *network-wide*: each instance contributes its local HashPipe
totals and thresholds on the merged view ([34]'s network-wide heavy
hitters).
"""

from __future__ import annotations

from itertools import compress
from typing import Dict, Hashable, List, Optional

from ..core.booster import Booster, GatedProgram
from ..core.dataflow import DataflowGraph
from ..core.modes import ModeSpec
from ..core.ppm import PpmRole
from ..dataplane.hashpipe import HashPipe
from ..dataplane.resources import ResourceVector
from ..netsim.packet import Packet, PacketKind
from ..netsim.switch import Drop, ProgrammableSwitch, ProgramResult
from .base import hashpipe_ppm, logic_ppm, parser_ppm

ATTACK_TYPE = "ddos"
FILTER_MODE = "ddos_filter"


class HeavyHitterProgram(GatedProgram):
    """Per-switch HashPipe counting bytes per source."""

    supports_batch = True

    def __init__(self, booster_name: str, name: str, stages: int = 4,
                 slots_per_stage: int = 64):
        pipe = HashPipe(f"{name}.pipe", stages=stages,
                        slots_per_stage=slots_per_stage)
        super().__init__(booster_name, name, pipe.resource_requirement())
        self.pipe = pipe
        #: Snapshot of the last *completed* tumbling window, captured by
        #: :meth:`roll_window` just before the counters reset.  Without
        #: it, a sync agent polling between the reset and the next
        #: window's traffic reads an empty pipe and briefly erases the
        #: heavy hitters from the network-wide view.
        self._last_window: Optional[Dict[Hashable, int]] = None

    def process_enabled(self, switch: ProgrammableSwitch,
                        packet: Packet) -> ProgramResult:
        if packet.kind != PacketKind.DATA:
            return None
        self.pipe.update(packet.src, packet.size_bytes)
        return None

    def process_batch_enabled(self, switch: ProgrammableSwitch,
                              batch) -> None:
        mask = batch.data_mask()
        if batch.all_data:
            # Whole-column fast path: no gather copy needed.
            self.pipe.update_batch(batch.src, batch.size_bytes)
            return
        selected = list(compress(zip(batch.src, batch.size_bytes), mask))
        if selected:
            self.pipe.update_batch([pair[0] for pair in selected],
                                   [pair[1] for pair in selected])

    def roll_window(self) -> Dict[Hashable, int]:
        """Close the current tumbling window: snapshot its counters,
        clear the pipe, and return the snapshot."""
        window = dict(self.pipe.heavy_hitters(1))
        self._last_window = window
        self.pipe.clear()
        return window

    def local_counts(self) -> Dict[Hashable, float]:
        """Counter source for a DetectorSyncAgent.

        Serves the last completed window when tumbling windows are in
        use (:meth:`roll_window` has run), so polling is race-free
        against the reset; falls back to the live counters otherwise.
        """
        source = (self._last_window if self._last_window is not None
                  else self.pipe.heavy_hitters(1))
        return {key: float(count) for key, count in source.items()}

    def export_state(self) -> Dict:
        return self.pipe.export_state()

    def import_state(self, state: Dict) -> None:
        self.pipe.import_state(state)


class HeavyHitterFilterProgram(GatedProgram):
    """Mitigation-mode filter: drops packets from flagged sources."""

    supports_batch = True

    def __init__(self, booster_name: str, name: str):
        super().__init__(booster_name, name,
                         ResourceVector(stages=1, sram_mb=0.1, alus=1))
        self.flagged: set = set()
        self.packets_dropped = 0

    def flag(self, source: str) -> None:
        self.flagged.add(source)

    def unflag_all(self) -> None:
        self.flagged.clear()

    def process_enabled(self, switch: ProgrammableSwitch,
                        packet: Packet) -> ProgramResult:
        if packet.kind != PacketKind.DATA:
            return None
        if packet.src in self.flagged:
            self.packets_dropped += 1
            return Drop("heavy_hitter")
        return None

    def process_batch_enabled(self, switch: ProgrammableSwitch,
                              batch) -> None:
        """Pre-filter stage: flagged-source membership mask over the
        whole src column; survivors pass through untouched."""
        flagged = self.flagged
        if not flagged:
            return
        mask = batch.data_mask()
        src = batch.src
        # isdisjoint scans the column at C speed (short-circuiting on the
        # first hit); only windows that actually contain flagged sources
        # pay for the per-index scan.
        if flagged.isdisjoint(src):
            return
        if batch.all_data:
            hits = [i for i, s in enumerate(src) if s in flagged]
        else:
            hits = [i for i, s in enumerate(src)
                    if mask[i] and s in flagged]
        self.packets_dropped += len(hits)
        for i in hits:
            batch.drop(i, "heavy_hitter")

    def export_state(self) -> Dict:
        return {"flagged": sorted(self.flagged)}

    def import_state(self, state: Dict) -> None:
        self.flagged = set(state.get("flagged", []))


class HeavyHitterBooster(Booster):
    """Volumetric DDoS detection (always on) + filtering (mode-gated)."""

    name = "heavy_hitter"
    attack_types = (ATTACK_TYPE,)

    def __init__(self, stages: int = 4, slots_per_stage: int = 64,
                 byte_threshold: int = 1_000_000,
                 check_period_s: Optional[float] = None,
                 clear_after_s: float = 5.0):
        self.stages = stages
        self.slots_per_stage = slots_per_stage
        self.byte_threshold = byte_threshold
        #: When set, a periodic detect->mode->flag loop runs on every
        #: detector switch after deployment (the self-driving defense);
        #: ``None`` leaves triggering to the caller (unit-test mode).
        self.check_period_s = check_period_s
        #: Revert to the default mode after this long with no source
        #: above threshold in a fresh counting window.
        self.clear_after_s = clear_after_s
        self.detectors: Dict[str, HeavyHitterProgram] = {}
        self.filters: Dict[str, HeavyHitterFilterProgram] = {}
        self.detection_events: List[tuple] = []
        self._active_since: Optional[float] = None
        self._last_seen_heavy: Optional[float] = None

    def always_on(self) -> bool:
        return True  # counting runs in the default mode; filtering is gated

    def modes(self) -> List[ModeSpec]:
        return [ModeSpec.of(FILTER_MODE, ATTACK_TYPE,
                            boosters_on=(f"{self.name}.filter",))]

    # ------------------------------------------------------------------
    def dataflow(self) -> DataflowGraph:
        graph = DataflowGraph(self.name)
        graph.add_ppm(parser_ppm(
            self.name, "parser", base=("src", "dst", "size_bytes")))
        graph.add_ppm(hashpipe_ppm(
            self.name, "counter", stages=self.stages,
            slots_per_stage=self.slots_per_stage,
            factory=self._make_detector))
        graph.add_ppm(logic_ppm(
            self.name, "filter", PpmRole.MITIGATION,
            ResourceVector(stages=1, sram_mb=0.1, alus=1),
            factory=self._make_filter))
        graph.add_edge("parser", "counter", weight=10)
        graph.add_edge("counter", "filter", weight=4)
        return graph

    def _make_detector(self, switch: ProgrammableSwitch) -> HeavyHitterProgram:
        program = HeavyHitterProgram(self.name, f"{self.name}.counter",
                                     stages=self.stages,
                                     slots_per_stage=self.slots_per_stage)
        self.detectors[switch.name] = program
        return program

    def _make_filter(self,
                     switch: ProgrammableSwitch) -> HeavyHitterFilterProgram:
        # The filter sub-booster has its own gating name so the mode can
        # turn it on while the counter stays always-on.
        program = HeavyHitterFilterProgram(f"{self.name}.filter",
                                           f"{self.name}.filter")
        self.filters[switch.name] = program
        return program

    # ------------------------------------------------------------------
    def heavy_sources(self, switch_name: str,
                      threshold: Optional[int] = None) -> Dict[Hashable, int]:
        """Local heavy hitters at one detector."""
        limit = threshold if threshold is not None else self.byte_threshold
        detector = self.detectors.get(switch_name)
        if detector is None:
            return {}
        return detector.pipe.heavy_hitters(limit)

    def flag_everywhere(self, source: str) -> None:
        for program in self.filters.values():
            program.flag(source)

    # ------------------------------------------------------------------
    # Self-driving runtime (detect -> mode change -> flag -> revert)
    # ------------------------------------------------------------------
    def on_deployed(self, deployment) -> None:
        if self.check_period_s is None:
            return
        sim = deployment.topo.sim
        for switch_name in sorted(self.detectors):
            if switch_name in deployment.mode_agents:
                sim.every(self.check_period_s, self._check, deployment,
                          switch_name, start=self.check_period_s)

    def _check(self, deployment, switch_name: str) -> None:
        """One detector's periodic pass over its HashPipe."""
        sim = deployment.topo.sim
        # Tumbling window: roll_window snapshots the window's counters
        # *before* resetting them, so concurrent local_counts() readers
        # (sync agents) keep seeing the completed window instead of the
        # momentarily-empty pipe.  The threshold applies to one check
        # period's bytes.
        window = self.detectors[switch_name].roll_window()
        heavy = {key: count for key, count in window.items()
                 if count >= self.byte_threshold}
        agent = deployment.mode_agents[switch_name]
        if heavy:
            self._last_seen_heavy = sim.now
            for source in sorted(heavy):
                self.flag_everywhere(source)
            if agent.mode_table.mode_for(ATTACK_TYPE) != FILTER_MODE:
                if agent.initiate(ATTACK_TYPE, FILTER_MODE):
                    self._active_since = sim.now
                    self.detection_events.append(
                        (sim.now, switch_name, dict(heavy)))
            return
        # Nothing heavy here: revert once every window has been quiet
        # long enough (only the activating switch drives the revert).
        if (self._active_since is not None
                and self._last_seen_heavy is not None
                and agent.mode_table.mode_for(ATTACK_TYPE) == FILTER_MODE
                and sim.now - self._last_seen_heavy >= self.clear_after_s):
            if agent.initiate(ATTACK_TYPE, "default"):
                self._active_since = None
                for program in self.filters.values():
                    program.unflag_all()
