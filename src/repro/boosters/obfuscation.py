"""Topology obfuscation booster (NetHide-style, §4.1).

"An attacker can easily change the target links if she detects that her
attack has triggered a defense."  When active, this booster answers
traceroute probes from suspicious sources with the *pre-attack* view of
the network: whatever path the static destination tables would have
given the pair, regardless of where the traffic actually flows now.  The
attacker's mapping therefore never changes, defeating the
detect-reroute-and-roll feedback loop (Figure 2d).

The first switch on the probe's path with the booster active handles the
whole exchange: it synthesizes the ICMP time-exceeded reply the claimed
hop would have sent (or a destination-reached reply once the probe's TTL
walks past the claimed path) and consumes the probe.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..core.booster import Booster, GatedProgram
from ..core.dataflow import DataflowGraph
from ..core.ppm import PpmRole
from ..dataplane.resources import ResourceVector
from ..netsim.fluid import FluidNetwork
from ..netsim.packet import Packet, PacketKind, Protocol
from ..netsim.routing import NoRouteError, Path, default_path_for
from ..netsim.switch import Consume, ProgrammableSwitch, ProgramResult
from .base import logic_ppm, parser_ppm
from .lfa_detector import ATTACK_TYPE


class ObfuscationProgram(GatedProgram):
    """Per-switch traceroute interceptor."""

    def __init__(self, booster: "TopologyObfuscationBooster", name: str):
        super().__init__(booster.name, name,
                         ResourceVector(stages=2, sram_mb=0.3, tcam_kb=64,
                                        alus=2))
        self.booster = booster
        self.replies_forged = 0

    def process_enabled(self, switch: ProgrammableSwitch,
                        packet: Packet) -> ProgramResult:
        if packet.kind != PacketKind.TRACEROUTE:
            return None
        if not self.booster.applies_to(packet.src):
            return None
        claimed = self.booster.claimed_path(packet.src, packet.dst)
        if claimed is None:
            return None
        probe_ttl = packet.headers.get("probe_ttl")
        if probe_ttl is None:
            return None
        # claimed.nodes = [src, sw1, ..., swN, dst]; TTL k expires at swk.
        switch_hops = list(claimed.nodes[1:-1])
        if probe_ttl <= len(switch_hops):
            reporter = switch_hops[probe_ttl - 1]
            destination_reached = False
        else:
            reporter = packet.dst
            destination_reached = True
        self._forge_reply(switch, packet, reporter, destination_reached)
        self.replies_forged += 1
        return Consume()

    def _forge_reply(self, switch: ProgrammableSwitch, probe: Packet,
                     reporter: str, destination_reached: bool) -> None:
        reply = Packet(
            src=switch.name, dst=probe.src, size_bytes=64,
            kind=PacketKind.ICMP_TTL_EXCEEDED, proto=Protocol.ICMP,
            headers={
                "reporter": reporter,
                "destination_reached": destination_reached,
                "probe_id": probe.headers.get("probe_id"),
                "probe_ttl": probe.headers.get("probe_ttl"),
            })
        reply.created_at = switch.sim.now
        next_hop = switch._resolve_next_hop(reply)
        if next_hop is not None:
            switch.send_via(next_hop, reply)


class TopologyObfuscationBooster(Booster):
    """The NetHide-style defense as a FastFlex booster."""

    name = "obfuscation"
    attack_types = (ATTACK_TYPE,)

    def __init__(self, fluid: Optional[FluidNetwork] = None,
                 obfuscate_all_sources: bool = False,
                 refresh_period_s: float = 0.05):
        self.fluid = fluid
        #: When True every source gets obfuscated replies (pure NetHide);
        #: FastFlex's step (4) applies it only to suspicious flows.
        self.obfuscate_all_sources = obfuscate_all_sources
        self.refresh_period_s = refresh_period_s
        self.programs: Dict[str, ObfuscationProgram] = {}
        self.suspicious_sources: Set[str] = set()
        self._claimed_cache: Dict[tuple, Optional[Path]] = {}
        self._topo = None

    # ------------------------------------------------------------------
    def dataflow(self) -> DataflowGraph:
        graph = DataflowGraph(self.name)
        graph.add_ppm(parser_ppm(
            self.name, "parser", base=("src", "dst", "ttl", "proto"),
            custom=("probe_id", "probe_ttl")))
        graph.add_ppm(logic_ppm(
            self.name, "obfuscator", PpmRole.MITIGATION,
            ResourceVector(stages=2, sram_mb=0.3, tcam_kb=64, alus=2),
            factory=self._make_program))
        graph.add_edge("parser", "obfuscator", weight=24)
        return graph

    def _make_program(self, switch: ProgrammableSwitch) -> ObfuscationProgram:
        program = ObfuscationProgram(self, f"{self.name}.obfuscator")
        self.programs[switch.name] = program
        return program

    # ------------------------------------------------------------------
    def on_deployed(self, deployment) -> None:
        self._topo = deployment.topo
        if self.fluid is not None:
            deployment.topo.sim.every(
                self.refresh_period_s, self._refresh_suspicious,
                start=self.refresh_period_s)

    def _refresh_suspicious(self) -> None:
        """Track which sources currently have suspicious flows."""
        now = self._topo.sim.now
        self.suspicious_sources = {
            f.src for f in self.fluid.flows
            if f.suspicious and f.active(now)}

    # ------------------------------------------------------------------
    def applies_to(self, src: str) -> bool:
        return self.obfuscate_all_sources or src in self.suspicious_sources

    def claimed_path(self, src: str, dst: str) -> Optional[Path]:
        """The pre-attack path presented to the attacker.

        Computed from the static destination tables (what forwarding gave
        the pair before any defense touched it) and cached — NetHide
        similarly fixes the obfuscated topology when the defense engages.
        """
        key = (src, dst)
        if key not in self._claimed_cache:
            if self._topo is None:
                return None
            try:
                self._claimed_cache[key] = default_path_for(
                    self._topo, src, dst)
            except (NoRouteError, KeyError, TypeError):
                self._claimed_cache[key] = None
        return self._claimed_cache[key]
