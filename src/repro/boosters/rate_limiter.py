"""Distributed global rate limiting booster ([62], §3.3).

Enforces an aggregate rate limit per tenant across *all* ingress
switches, even though no single switch sees all of a tenant's traffic.
Each instance counts local per-tenant bytes in a sliding window; a
:class:`~repro.core.sync.DetectorSyncAgent` merges the counts across
instances, and each instance then drops proportionally to how far the
*global* rate exceeds the limit — the canonical example the paper gives
of detection that is only possible with distributed synchronization.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, List, Optional, Tuple

from ..core.booster import Booster, GatedProgram
from ..core.dataflow import DataflowGraph
from ..core.modes import ModeSpec
from ..core.ppm import PpmRole
from ..core.sync import DetectorSyncAgent
from ..dataplane.resources import ResourceVector
from ..netsim.packet import Packet, PacketKind
from ..netsim.switch import Drop, ProgrammableSwitch, ProgramResult
from .base import logic_ppm, parser_ppm, sketch_ppm

ATTACK_TYPE = "rate_abuse"
LIMIT_MODE = "global_limit"

#: Header naming the tenant a packet belongs to (set at ingress in a
#: real deployment; tests set it directly).
TENANT_HEADER = "tenant"


class RateLimiterProgram(GatedProgram):
    """Per-switch tenant byte counting plus proportional dropping."""

    def __init__(self, booster: "GlobalRateLimiterBooster", name: str):
        super().__init__(booster.name, name,
                         ResourceVector(stages=2, sram_mb=0.2, alus=3))
        self.booster = booster
        self.window_s = booster.window_s
        self._events: Dict[Hashable, Deque[Tuple[float, int]]] = {}
        self.sync_agent: Optional[DetectorSyncAgent] = None
        self.packets_dropped = 0

    # ------------------------------------------------------------------
    def local_rates(self) -> Dict[Hashable, float]:
        """Per-tenant local rate (bits/s) over the sliding window —
        the counter source handed to the sync agent."""
        if self.switch is None:
            return {}
        now = self.switch.sim.now
        rates: Dict[Hashable, float] = {}
        for tenant, events in self._events.items():
            self._expire(events, now)
            total_bytes = sum(size for _, size in events)
            rates[tenant] = total_bytes * 8 / self.window_s
        return {t: r for t, r in rates.items() if r > 0}

    def global_rate(self, tenant: Hashable) -> float:
        """The tenant's network-wide rate, if a sync agent is attached;
        otherwise just the local rate."""
        if self.sync_agent is not None:
            return self.sync_agent.global_view().get(tenant, 0.0)
        return self.local_rates().get(tenant, 0.0)

    def _expire(self, events: Deque[Tuple[float, int]], now: float) -> None:
        while events and events[0][0] < now - self.window_s:
            events.popleft()

    # ------------------------------------------------------------------
    supports_batch = True

    def process_enabled(self, switch: ProgrammableSwitch,
                        packet: Packet) -> ProgramResult:
        if packet.kind != PacketKind.DATA:
            return None
        tenant = packet.headers.get(TENANT_HEADER)
        if tenant is None:
            return None
        events = self._events.setdefault(tenant, deque())
        now = switch.sim.now
        self._expire(events, now)
        events.append((now, packet.size_bytes))

        limit = self.booster.limit_for(tenant)
        if limit is None:
            return None
        global_rate = self.global_rate(tenant)
        if global_rate <= limit:
            return None
        # Drop with probability proportional to the overshoot, so the
        # admitted aggregate converges to the limit network-wide.
        drop_probability = 1.0 - limit / global_rate
        if switch.sim.rng.random() < drop_probability:
            self.packets_dropped += 1
            return Drop("global_rate_limit")
        return None

    def process_batch_enabled(self, switch: ProgrammableSwitch,
                              batch) -> None:
        """In-order replay of :meth:`process_enabled` with hoisted
        lookups.  The per-packet RNG draw order is part of the
        determinism contract, so the drop coin is flipped packet by
        packet, exactly as on the sequential path."""
        now = switch.sim.now
        rng = switch.sim.rng.random
        events_by_tenant = self._events
        limit_for = self.booster.limit_for
        data = PacketKind.DATA
        for i, packet in batch.survivors():
            if packet.kind is not data:
                continue
            tenant = packet.headers.get(TENANT_HEADER)
            if tenant is None:
                continue
            events = events_by_tenant.setdefault(tenant, deque())
            self._expire(events, now)
            events.append((now, packet.size_bytes))
            limit = limit_for(tenant)
            if limit is None:
                continue
            global_rate = self.global_rate(tenant)
            if global_rate <= limit:
                continue
            drop_probability = 1.0 - limit / global_rate
            if rng() < drop_probability:
                self.packets_dropped += 1
                batch.drop(i, "global_rate_limit")

    def export_state(self) -> Dict:
        return {"events": {tenant: list(events)
                           for tenant, events in self._events.items()}}

    def import_state(self, state: Dict) -> None:
        for tenant, events in state.get("events", {}).items():
            self._events[tenant] = deque(tuple(e) for e in events)


class GlobalRateLimiterBooster(Booster):
    """The distributed rate limiter."""

    name = "rate_limiter"
    attack_types = (ATTACK_TYPE,)

    def __init__(self, limits: Optional[Dict[Hashable, float]] = None,
                 window_s: float = 1.0, sync_period_s: float = 0.1,
                 always_enforce: bool = True):
        self.limits = dict(limits or {})
        self.window_s = window_s
        self.sync_period_s = sync_period_s
        self._always_enforce = always_enforce
        self.programs: Dict[str, RateLimiterProgram] = {}
        self.sync_agents: Dict[str, DetectorSyncAgent] = {}

    def always_on(self) -> bool:
        return self._always_enforce

    def modes(self) -> List[ModeSpec]:
        return [ModeSpec.of(LIMIT_MODE, ATTACK_TYPE,
                            boosters_on=(self.name,))]

    def limit_for(self, tenant: Hashable) -> Optional[float]:
        return self.limits.get(tenant)

    # ------------------------------------------------------------------
    def dataflow(self) -> DataflowGraph:
        graph = DataflowGraph(self.name)
        graph.add_ppm(parser_ppm(
            self.name, "parser", base=("src", "dst", "size_bytes"),
            custom=(TENANT_HEADER,)))
        graph.add_ppm(sketch_ppm(
            self.name, "tenant_counts", width=1024, depth=4,
            factory=self._make_program))
        graph.add_ppm(logic_ppm(
            self.name, "limiter", PpmRole.MITIGATION,
            ResourceVector(stages=1, sram_mb=0.05, alus=2)))
        graph.add_edge("parser", "tenant_counts", weight=12)
        graph.add_edge("tenant_counts", "limiter", weight=8)
        return graph

    def _make_program(self, switch: ProgrammableSwitch) -> RateLimiterProgram:
        program = RateLimiterProgram(self, f"{self.name}.tenant_counts")
        self.programs[switch.name] = program
        return program

    # ------------------------------------------------------------------
    def on_deployed(self, deployment) -> None:
        """Wire a sync agent next to every limiter instance."""
        peers = sorted(self.programs)
        for switch_name, program in self.programs.items():
            agent = DetectorSyncAgent(
                source=program.local_rates,
                peers=[p for p in peers if p != switch_name],
                sync_period_s=self.sync_period_s,
                name=f"{self.name}.sync")
            deployment.topo.switch(switch_name).install_program(agent)
            program.sync_agent = agent
            self.sync_agents[switch_name] = agent
