"""Covert-channel mitigation booster (NetWarden-style, [78]).

NetWarden defends against data exfiltration from compromised hosts via
network covert channels.  We implement the storage-channel variant: a
compromised endpoint modulates a header field (TTL here) across the
packets of one flow to leak bits.  Detection watches per-flow header
variability; mitigation *normalizes* the field, destroying the channel
while leaving the flow functional.

Architecturally this booster matters for §3.1's sharing story: its
per-flow connection table is declared with exactly the same semantic
parameters as the LFA detector's, so the joint analysis installs **one**
table serving both — the paper's "tables that maintain per-flow state"
sharing example, with real stage savings.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..core.booster import Booster, GatedProgram
from ..core.dataflow import DataflowGraph
from ..core.modes import ModeSpec
from ..core.ppm import PpmRole
from ..dataplane.resources import ResourceVector
from ..netsim.packet import Packet, PacketKind
from .base import flow_table_ppm, logic_ppm, parser_ppm

ATTACK_TYPE = "covert_channel"
NORMALIZE_MODE = "covert_normalize"

#: TTL every normalized packet leaves with (a common real-world choice).
CANONICAL_TTL = 60


class CovertChannelProgram(GatedProgram):
    """Per-switch detection (always) + normalization (mode-gated).

    Detection tracks the set of distinct TTLs observed per flow; a flow
    modulating its TTL across more than ``ttl_variants_threshold``
    values is flagged as a covert-channel suspect.  While the
    ``covert_normalize`` mode is on, flagged flows' TTLs are rewritten
    to a canonical value.
    """

    def __init__(self, booster_name: str, name: str,
                 ttl_variants_threshold: int = 4,
                 table_capacity: int = 4096):
        super().__init__(booster_name, name,
                         ResourceVector(stages=1, sram_mb=0.1, alus=2))
        self.ttl_variants_threshold = ttl_variants_threshold
        self.table_capacity = table_capacity
        self._ttls_seen: Dict[object, Set[int]] = {}
        self.suspects: Set[object] = set()
        self.packets_normalized = 0

    def process(self, switch, packet: Packet):
        if packet.kind != PacketKind.DATA:
            return None
        key = packet.flow_key
        # At a fixed switch, every packet of a well-behaved flow shows
        # the same TTL (initial TTL minus a constant hop count); a
        # modulating endpoint shows many.
        seen = self._ttls_seen.setdefault(key, set())
        if len(seen) <= self.ttl_variants_threshold:
            seen.add(packet.ttl)
        if len(seen) > self.ttl_variants_threshold:
            self.suspects.add(key)
        if key in self.suspects and self.enabled_on(switch):
            packet.ttl = CANONICAL_TTL
            self.packets_normalized += 1
        return None

    def is_suspect(self, key) -> bool:
        return key in self.suspects

    def export_state(self) -> Dict:
        return {"ttls_seen": {k: sorted(v)
                              for k, v in self._ttls_seen.items()},
                "suspects": list(self.suspects)}

    def import_state(self, state: Dict) -> None:
        for key, ttls in state.get("ttls_seen", {}).items():
            self._ttls_seen[key] = set(ttls)
        self.suspects.update(state.get("suspects", []))


class NetWardenBooster(Booster):
    """Covert-channel detection and normalization as a FastFlex booster."""

    name = "netwarden"
    attack_types = (ATTACK_TYPE,)

    def __init__(self, ttl_variants_threshold: int = 4,
                 table_capacity: int = 4096):
        self.ttl_variants_threshold = ttl_variants_threshold
        self.table_capacity = table_capacity
        self.programs: Dict[str, CovertChannelProgram] = {}

    def always_on(self) -> bool:
        return False  # detection logic observes regardless; rewriting gated

    def modes(self) -> List[ModeSpec]:
        return [ModeSpec.of(NORMALIZE_MODE, ATTACK_TYPE,
                            boosters_on=(self.name,))]

    def dataflow(self) -> DataflowGraph:
        graph = DataflowGraph(self.name)
        graph.add_ppm(parser_ppm(
            self.name, "parser",
            base=("src", "dst", "proto", "sport", "dport", "ttl")))
        # Deliberately identical semantic parameters to the LFA
        # detector's per-flow table: the analyzer shares one instance.
        graph.add_ppm(flow_table_ppm(
            self.name, "conn_state", capacity=self.table_capacity))
        graph.add_ppm(logic_ppm(
            self.name, "channel_detector", PpmRole.DETECTION,
            ResourceVector(stages=1, sram_mb=0.1, alus=2),
            factory=self._make_program))
        graph.add_ppm(logic_ppm(
            self.name, "normalizer", PpmRole.MITIGATION,
            ResourceVector(stages=1, sram_mb=0.02, alus=1)))
        graph.add_edge("parser", "conn_state", weight=13)
        graph.add_edge("conn_state", "channel_detector", weight=40)
        graph.add_edge("channel_detector", "normalizer", weight=8)
        return graph

    def _make_program(self, switch) -> CovertChannelProgram:
        program = CovertChannelProgram(
            self.name, f"{self.name}.channel_detector",
            ttl_variants_threshold=self.ttl_variants_threshold,
            table_capacity=self.table_capacity)
        self.programs[switch.name] = program
        return program
