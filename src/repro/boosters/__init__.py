"""Defense apps ("boosters") built on the FastFlex platform.

The §4.1 building blocks — LFA detection, packet dropping,
congestion-aware rerouting, topology obfuscation — plus the wider
catalog the paper's introduction surveys: heavy-hitter/volumetric DDoS
detection (HashPipe), hop-count filtering (NetHCF), and distributed
global rate limiting.
"""

from .base import (bloom_ppm, flow_table_ppm, hashpipe_ppm, logic_ppm,
                   parser_ppm, sketch_ppm)
from .heavy_hitter import (HeavyHitterBooster, HeavyHitterFilterProgram,
                           HeavyHitterProgram)
from .hop_count import (HopCountFilterBooster, HopCountFilterProgram,
                        INITIAL_TTLS, infer_hop_count)
from .lfa_defense import (LfaDefense, build_figure2_defense,
                          build_lfa_defense)
from .lfa_detector import (ATTACK_TYPE as LFA_ATTACK_TYPE, Detection,
                           LfaDetectorBooster, LfaDetectorProgram,
                           MITIGATION_MODE as LFA_MITIGATION_MODE)
from .netwarden import (CANONICAL_TTL, CovertChannelProgram,
                        NetWardenBooster)
from .obfuscation import ObfuscationProgram, TopologyObfuscationBooster
from .packet_dropper import PacketDropperBooster, PacketDropperProgram
from .poise import (AccessPolicy, CONTEXT_HEADER, PoiseBooster,
                    PoiseProgram)
from .rate_limiter import (GlobalRateLimiterBooster, RateLimiterProgram,
                           TENANT_HEADER)
from .reroute import (BestPathEntry, CongestionRerouteBooster,
                      HulaProbeProgram)

__all__ = [
    "BestPathEntry", "CongestionRerouteBooster", "Detection",
    "GlobalRateLimiterBooster", "HeavyHitterBooster",
    "HeavyHitterFilterProgram", "HeavyHitterProgram",
    "HopCountFilterBooster", "HopCountFilterProgram", "HulaProbeProgram",
    "INITIAL_TTLS", "LFA_ATTACK_TYPE", "LFA_MITIGATION_MODE", "LfaDefense",
    "LfaDetectorBooster", "LfaDetectorProgram", "NetWardenBooster",
    "CANONICAL_TTL", "CovertChannelProgram", "ObfuscationProgram",
    "AccessPolicy", "CONTEXT_HEADER", "PoiseBooster", "PoiseProgram",
    "PacketDropperBooster", "PacketDropperProgram", "RateLimiterProgram",
    "TENANT_HEADER", "TopologyObfuscationBooster", "bloom_ppm",
    "build_figure2_defense", "build_lfa_defense", "flow_table_ppm",
    "hashpipe_ppm", "infer_hop_count", "logic_ppm", "parser_ppm",
    "sketch_ppm",
]
